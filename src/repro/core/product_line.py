"""Grammar product lines: feature model + units ⇒ composed products.

"The complete SQL:2003 BNF grammar represents a product line, in which
various sub-grammars represent features.  Composing these features creates
products of this product line."

:class:`GrammarProductLine` ties a feature model to the units implementing
its features.  :meth:`GrammarProductLine.configure` turns a feature
selection into a :class:`ComposedProduct` — a validated configuration, the
composition sequence, the composed grammar/token set, and a trace of what
the composer did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import CompositionError
from ..features.configuration import (
    Configuration,
    check_configuration,
    expand_selection,
)
from ..features.model import FeatureModel
from ..grammar.grammar import Grammar
from .composer import CompositionTrace, GrammarComposer
from .sequence import order_units
from .unit import FeatureUnit


@dataclass(frozen=True)
class ComposedProduct:
    """One product of the line: a tailor-made grammar for a feature selection."""

    name: str
    configuration: Configuration
    sequence: tuple[str, ...]
    grammar: Grammar
    trace: CompositionTrace
    #: The product line this product was configured from; lets parsers
    #: explain rejections in terms of *unselected* features.  ``None`` for
    #: hand-built products.
    line: "GrammarProductLine | None" = None
    #: Canonical fingerprint of (line, expanded selection, counts) — the
    #: cache key the :mod:`repro.service` layer stores this product under.
    #: ``None`` for products composed outside a product line.
    fingerprint: "object | None" = None

    def parser(self, strict: bool = False, hints: bool = True, program=None):
        """Build an interpreting parser for this product.

        With ``hints`` on (and a known product line), syntax errors are
        enriched with feature-aware suggestions: when the offending token
        is a keyword of an unselected feature's sub-grammar, the
        diagnostic says "enable feature 'X'".

        ``program`` lets a caller that already compiled this product's
        parse program (the service registry) share it instead of
        recompiling.
        """
        from ..parsing.parser import Parser

        return Parser(self.grammar, strict=strict,
                      hint_provider=self.hint_provider() if hints else None,
                      program=program)

    def program(self, analysis=None):
        """Compile this product's parse-program IR.

        The program is the single compiled semantics source shared by the
        interpreting parser, the code generator, and the service cache;
        the product's fingerprint digest is embedded for cache validation.
        """
        from ..parsing.program import compile_program

        digest = getattr(self.fingerprint, "digest", None)
        return compile_program(self.grammar, analysis=analysis,
                               fingerprint=digest)

    def hint_provider(self):
        """Feature-hint callback over the line's unselected units."""
        if self.line is None:
            return None
        from ..diagnostics.hints import feature_hint_provider

        return feature_hint_provider(
            self.line.units(), self.configuration.selected,
            grammar=self.grammar,
        )

    def rule_origins(self) -> dict[str, str]:
        """Rule name -> feature that first contributed it (trace provenance).

        Only rules present in the composed grammar are reported; rules a
        later unit removed again do not appear.
        """
        return {
            name: origin
            for name, origin in self.trace.origins.items()
            if self.grammar.has_rule(name)
        }

    def coverage_map(self, program=None):
        """Instrumentation-point numbering for this product's parse program.

        ``program`` reuses an already-compiled program (coverage point
        ids are keyed by instruction identity, so the map must be built
        over the *same* program object the instrumented parser drives).
        """
        from ..parsing.coverage import CoverageMap

        return CoverageMap(program if program is not None else self.program())

    def generate_source(self, program=None) -> str:
        """Emit standalone Python parser source for this product.

        When the product carries a fingerprint, its digest is embedded in
        the source so the service layer's disk cache can validate
        artifacts across processes.  ``program`` reuses an
        already-compiled parse program instead of recompiling.
        """
        from ..parsing.codegen import generate_parser_source

        digest = getattr(self.fingerprint, "digest", None)
        return generate_parser_source(self.grammar, fingerprint=digest,
                                      program=program)

    def size(self) -> dict[str, int]:
        """Grammar size metrics (experiment E6)."""
        return self.grammar.size()


class GrammarProductLine:
    """A software product line of grammars.

    Args:
        model: The feature model (diagram + constraints).
        units: The feature units; every unit's feature must exist in the
            model.  Features without units are allowed — they are
            pure-configuration features (e.g. abstract groupings).
        name: Product-line name, used for composed grammar names.
        start: Start rule of composed grammars (defaults to the first
            start symbol contributed during composition).
    """

    def __init__(
        self,
        model: FeatureModel,
        units: Iterable[FeatureUnit],
        name: str = "product-line",
        start: str | None = None,
    ) -> None:
        self.model = model
        self.name = name
        self.start = start
        self._units: dict[str, FeatureUnit] = {}
        for u in units:
            if not model.has_feature(u.feature):
                raise CompositionError(
                    f"unit {u.feature!r} has no corresponding feature in the model"
                )
            if u.feature in self._units:
                raise CompositionError(
                    f"duplicate unit for feature {u.feature!r}"
                )
            self._units[u.feature] = u

    # -- unit access ----------------------------------------------------------

    def unit_for(self, feature: str) -> FeatureUnit | None:
        return self._units.get(feature)

    def units(self) -> list[FeatureUnit]:
        return list(self._units.values())

    def features_with_units(self) -> list[str]:
        return list(self._units)

    # -- configuration --------------------------------------------------------

    def resolve_configuration(
        self,
        features: Iterable[str],
        counts: Mapping[str, int] | None = None,
        expand: bool = True,
    ) -> Configuration:
        """Resolve a (possibly sparse) selection into a full configuration.

        This is the pure "what would be composed" half of
        :meth:`configure`: equivalent sparse selections resolve to the
        same configuration, which is what lets the service layer key
        caches by fingerprint without composing anything.
        """
        if expand:
            # expansion closure: the model pulls in ancestors/mandatory
            # children; unit-level requires may then add features, which in
            # turn need model expansion again — iterate until stable.
            selected = set(features)
            while True:
                config = expand_selection(self.model, selected, counts)
                missing: set[str] = set()
                for name in config.selected:
                    u = self._units.get(name)
                    if u is not None:
                        missing.update(
                            req for req in u.requires if req not in config.selected
                        )
                if not missing:
                    return config
                selected = set(config.selected) | missing
        config = Configuration.of(features, counts)
        check_configuration(self.model, config)
        return config

    def compose_product(
        self,
        config: Configuration,
        strict_order: bool = True,
        product_name: str | None = None,
        fingerprint: "object | None" = None,
    ) -> ComposedProduct:
        """Compose an already-resolved configuration into a product.

        The default product name is fingerprint-derived
        (``"{line}@{digest[:12]}"``), so equivalent selections always get
        the same name and different selections never collide.
        """
        # composition sequence: model pre-order restricted to the selection,
        # refined by unit-level requires/after edges
        preorder = [
            f.name for f in self.model.root.walk() if f.name in config.selected
        ]
        selected_units = [
            self._units[name] for name in preorder if name in self._units
        ]
        sequence = order_units(selected_units, config.selected)

        if fingerprint is None:
            from ..service.fingerprint import configuration_fingerprint

            fingerprint = configuration_fingerprint(self, config)
        name = product_name or f"{self.name}@{fingerprint.short}"

        trace = CompositionTrace()
        composer = GrammarComposer(strict_order=strict_order)
        grammar = Grammar(name)
        for u in sequence:
            if u.grammar is not None:
                grammar = composer.compose(
                    grammar, u.grammar, trace=trace, origin=u.feature
                )
            if u.removes:
                grammar = composer.remove_rules(grammar, u.removes, trace=trace)
        grammar.name = name
        if self.start is not None:
            grammar.start = self.start

        return ComposedProduct(
            name=name,
            configuration=config,
            sequence=tuple(u.feature for u in sequence),
            grammar=grammar,
            trace=trace,
            line=self,
            fingerprint=fingerprint,
        )

    def configure(
        self,
        features: Iterable[str],
        counts: Mapping[str, int] | None = None,
        expand: bool = True,
        strict_order: bool = True,
        product_name: str | None = None,
    ) -> ComposedProduct:
        """Compose the product for a feature selection.

        Args:
            features: Selected feature names (sparse when ``expand``).
            counts: Clone counts for cardinality features.
            expand: Grow the selection to a full valid configuration
                (ancestors, mandatory children, requires) before checking.
            strict_order: Enforce the paper's composition-order rules.
            product_name: Name of the composed grammar; defaults to a
                fingerprint-derived deterministic name.
        """
        config = self.resolve_configuration(features, counts, expand=expand)
        return self.compose_product(
            config, strict_order=strict_order, product_name=product_name
        )

    def __repr__(self) -> str:
        return (
            f"<GrammarProductLine {self.name!r}: {len(self.model)} features, "
            f"{len(self._units)} units>"
        )
