"""The grammar composition engine — the paper's core contribution (§3.2).

Composition merges an extension sub-grammar into a base grammar.  Rules
that share a nonterminal are merged alternative by alternative using the
paper's rules:

1. *new contains old* → the old production is **replaced** by the new one
   (``A : B`` + ``A : B C`` ⇒ ``A : B C``);
2. *new contained in old* → the old production is **retained**
   (``A : B C`` + ``A : B`` ⇒ ``A : B C``);
3. *otherwise* → productions are **appended as choices**
   (``A : B`` + ``A : C`` ⇒ ``A : B | C``).

Containment is structural: an optional element ``[C]`` covers the plain
element ``C``, a (separated) list covers a single item, and a choice
covers each of its alternatives.  That makes the paper's two ordering
rules checkable:

* *optionals compose after their non-optional base* — composing
  ``A : B [C]`` when no base ``A : B`` exists yet is a
  :class:`~repro.errors.CompositionOrderError` in strict mode;
* *sublists compose ahead of complex lists* — likewise for
  ``A : B (COMMA B)*`` before ``A : B``.

Token files merge via :meth:`repro.lexer.TokenSet.merge`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import CompositionOrderError
from ..grammar.expr import Choice, Element, Opt, Rep, flatten
from ..grammar.grammar import Grammar, Rule


@dataclass
class CompositionTrace:
    """Records what the composer did — inspectable provenance for tools."""

    replaced: list[tuple[str, str, str]] = field(default_factory=list)
    retained: list[tuple[str, str, str]] = field(default_factory=list)
    appended: list[tuple[str, str]] = field(default_factory=list)
    merged: list[tuple[str, str, str]] = field(default_factory=list)
    added_rules: list[str] = field(default_factory=list)
    removed_rules: list[str] = field(default_factory=list)
    #: rule name -> unit (feature) that first contributed the rule; filled
    #: when the composer is told which unit it is composing (``origin=``).
    origins: dict[str, str] = field(default_factory=dict)
    #: rule name -> every unit that added or refined the rule, in
    #: composition order (the coverage report's per-feature rollup key).
    contributors: dict[str, list[str]] = field(default_factory=dict)

    def record_touch(self, rule_name: str, origin: str | None) -> None:
        """Attribute one rule addition/refinement to a composing unit."""
        if origin is None:
            return
        self.origins.setdefault(rule_name, origin)
        touched = self.contributors.setdefault(rule_name, [])
        if origin not in touched:
            touched.append(origin)

    def summary(self) -> str:
        return (
            f"{len(self.added_rules)} rules added, "
            f"{len(self.replaced)} productions replaced, "
            f"{len(self.retained)} retained, "
            f"{len(self.appended)} appended, "
            f"{len(self.merged)} optional-merged, "
            f"{len(self.removed_rules)} rules removed"
        )


def _elements_match(covering: Element, covered: Element) -> bool:
    """Can ``covering`` stand in for ``covered`` at one sequence position?"""
    if covering == covered:
        return True
    if isinstance(covering, Opt):
        if covering.inner == covered:
            return True
        if isinstance(covered, Opt) and structurally_covers(
            flatten(covering.inner), flatten(covered.inner)
        ):
            return True
    if isinstance(covering, Rep):
        if covering.inner == covered:
            return True
        if (
            isinstance(covered, Rep)
            and covering.separator == covered.separator
            and covering.min <= covered.min
            and structurally_covers(
                flatten(covering.inner), flatten(covered.inner)
            )
        ):
            return True
    if isinstance(covering, Choice) and any(
        alt == covered for alt in covering.alternatives
    ):
        return True
    return False


def covering_match(
    covering: list[Element], covered: list[Element]
) -> list[int] | None:
    """Greedy in-order match of ``covered`` into ``covering``.

    Returns, for each element of ``covered``, the index in ``covering``
    that matches it — or ``None`` when no such in-order embedding exists.
    An empty ``covered`` sequence (epsilon) is covered by anything.
    """
    matches: list[int] = []
    position = 0
    for element in covered:
        found = None
        for index in range(position, len(covering)):
            if _elements_match(covering[index], element):
                found = index
                break
        if found is None:
            return None
        matches.append(found)
        position = found + 1
    return matches


def structurally_covers(
    covering: list[Element], covered: list[Element]
) -> bool:
    """The paper's containment relation, restricted to refinements.

    ``covering`` contains ``covered`` when an in-order embedding exists
    and every *unmatched* covering element is either optional/list-like
    (``B [C]`` covers ``B``) or a mandatory **suffix** extension
    (``B C`` covers ``B``, the paper's rule-1 example).  A mandatory
    element *before* the matched region (``DATE s`` vs ``s``) marks a
    genuinely different construct, which must compose as a new choice —
    not replace the old production.
    """
    covering = _expand_separated_lists(covering)
    covered = _expand_separated_lists(covered)
    total_covering = len(covering)
    total_covered = len(covered)
    memo: dict[tuple[int, int], bool] = {}

    def embeds(i: int, j: int) -> bool:
        """Can covered[j:] embed into covering[i:]?

        A covering element may be skipped before a pending match only if
        it is optional/list-like; once everything is matched (j == m) the
        remaining tail may contain anything — that is the paper's
        mandatory-suffix extension (``B C`` covers ``B``).
        """
        if j == total_covered:
            return True
        if i == total_covering:
            return False
        key = (i, j)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = (
            _elements_match(covering[i], covered[j]) and embeds(i + 1, j + 1)
        ) or (_optional_like(covering[i]) and embeds(i + 1, j))
        memo[key] = result
        return result

    return embeds(0, 0)


def _expand_separated_lists(elements: list[Element]) -> list[Element]:
    """Rewrite ``Rep(x, min=1, sep)`` as ``x (sep x)*`` for matching.

    The DSL normalizes ``x (SEP x)*`` into a separated-list node; a
    refinement that adds material *inside* the repetition (e.g. the
    set-operation quantifier) stays in expanded form.  Expanding both
    sides makes the containment check representation-independent.
    """
    from ..grammar.expr import Seq

    expanded: list[Element] = []
    for element in elements:
        if (
            isinstance(element, Rep)
            and element.separator is not None
            and element.min == 1
        ):
            expanded.append(element.inner)
            expanded.append(
                Rep(Seq((element.separator, element.inner)), min=0)
            )
        else:
            expanded.append(element)
    return expanded


def covers(covering_alt: Element, covered_alt: Element) -> bool:
    """True when ``covering_alt`` contains ``covered_alt`` (paper §3.2)."""
    return structurally_covers(flatten(covering_alt), flatten(covered_alt))


def _optional_like(element: Element) -> bool:
    """Elements whose presence marks an 'optional/list extension'."""
    if isinstance(element, Opt):
        return True
    if isinstance(element, Rep):
        return element.min == 0 or element.separator is not None
    return False


def _unmatched_optional_extras(
    covering: list[Element], covered: list[Element]
) -> bool:
    """Does the covering form add optional/list structure over the covered one?

    True when the in-order embedding leaves unmatched covering elements
    that are optional, or matches a plain element against an
    optional/list wrapper — the signatures of the paper's "optional after
    base" and "sublist before complex list" situations.
    """
    matches = covering_match(covering, covered)
    if matches is None:
        return False
    matched = set(matches)
    for index, element in enumerate(covering):
        if index not in matched and _optional_like(element):
            return True
    for covering_index, covered_element in zip(matches, covered):
        wrapper = covering[covering_index]
        if wrapper != covered_element and _optional_like(wrapper):
            return True
    return False


def _interleave_optionals(
    old_flat: list[Element], new_flat: list[Element]
) -> Element | None:
    """Merge two alternatives sharing the same mandatory core.

    Both forms are decomposed into mandatory "anchor" elements with runs of
    optional/list elements between them.  When the anchor sequences are
    structurally equal, the new form's optionals are appended to the old
    form's run at the same anchor (composition order decides placement —
    earlier features' optionals stay first).  Returns ``None`` when the
    cores differ, or when either form has no mandatory anchor at all
    (purely optional alternatives stay separate choices).
    """
    old_core, old_buckets = _split_by_anchors(old_flat)
    new_core, new_buckets = _split_by_anchors(new_flat)
    if not old_core or old_core != new_core:
        return None
    merged: list[Element] = []
    for bucket_index in range(len(old_core) + 1):
        run = list(old_buckets[bucket_index])
        # Multiplicity-aware union: an optional already present consumes
        # one existing occurrence (re-composing the same feature stays
        # idempotent), but ``[b] [b]`` merged over ``[a]`` must keep both
        # copies of ``[b]`` — dropping duplicates loses language.
        available = Counter(run)
        for element in new_buckets[bucket_index]:
            if available[element] > 0:
                available[element] -= 1
            else:
                run.append(element)
        merged.extend(run)
        if bucket_index < len(old_core):
            merged.append(old_core[bucket_index])
    from ..grammar.expr import seq

    return seq(*merged)


def _split_by_anchors(
    elements: list[Element],
) -> tuple[list[Element], list[list[Element]]]:
    """Split a flat alternative into mandatory anchors and optional runs.

    Returns ``(core, buckets)`` where ``buckets[k]`` holds the optionals
    preceding anchor ``k`` and ``buckets[len(core)]`` the trailing run.
    """
    core: list[Element] = []
    buckets: list[list[Element]] = [[]]
    for element in elements:
        if _optional_like(element):
            buckets[-1].append(element)
        else:
            core.append(element)
            buckets.append([])
    return core, buckets


class GrammarComposer:
    """Composes sub-grammars according to the paper's rules.

    Args:
        strict_order: Enforce the paper's composition-order rules
            (optional extensions and complex lists must not precede their
            base).  When False, out-of-order compositions are accepted and
            resolved by the containment rules, which is convenient for
            exploratory use.
    """

    def __init__(self, strict_order: bool = True) -> None:
        self.strict_order = strict_order

    # -- public -----------------------------------------------------------

    def compose(
        self,
        base: Grammar,
        extension: Grammar,
        trace: CompositionTrace | None = None,
        origin: str | None = None,
    ) -> Grammar:
        """Return a new grammar: ``base`` extended by ``extension``.

        ``origin`` names the feature unit the extension belongs to; when
        given, every rule the extension adds or refines is attributed to
        it in the trace's provenance maps (what lets coverage reports
        say *which feature* an uncovered rule came from).
        """
        trace = trace if trace is not None else CompositionTrace()
        result = base.copy()
        result.tokens = base.tokens.merge(extension.tokens)
        for ext_rule in extension:
            if not result.has_rule(ext_rule.name):
                self._check_order_for_new_rule(ext_rule)
                result.add_rule(ext_rule.copy())
                trace.added_rules.append(ext_rule.name)
                trace.record_touch(ext_rule.name, origin)
                continue
            target = result.rule(ext_rule.name)
            for alternative in ext_rule.alternatives:
                self._merge_alternative(target, alternative, trace)
            trace.record_touch(ext_rule.name, origin)
        if result.start is None:
            result.start = extension.start
        return result

    def compose_all(
        self,
        grammars: list[Grammar],
        name: str = "composed",
        trace: CompositionTrace | None = None,
    ) -> Grammar:
        """Fold a composition sequence left to right."""
        result = Grammar(name)
        for grammar in grammars:
            result = self.compose(result, grammar, trace=trace)
        result.name = name
        return result

    def remove_rules(
        self,
        grammar: Grammar,
        names: tuple[str, ...],
        trace: CompositionTrace | None = None,
    ) -> Grammar:
        """Delete rules by name (the 'removing production rules' mechanism)."""
        result = grammar.copy()
        for name in names:
            if result.has_rule(name):
                result.remove_rule(name)
                if trace is not None:
                    trace.removed_rules.append(name)
        return result

    # -- merge machinery ------------------------------------------------------

    def _merge_alternative(
        self, rule: Rule, new_alt: Element, trace: CompositionTrace
    ) -> None:
        if any(old == new_alt for old in rule.alternatives):
            return  # exact duplicate: nothing to do

        new_flat = flatten(new_alt)

        # paper rule 1: the new production contains an old one -> replace
        covered_indices = [
            index
            for index, old in enumerate(rule.alternatives)
            if structurally_covers(new_flat, flatten(old))
        ]
        if covered_indices:
            first = covered_indices[0]
            trace.replaced.append(
                (rule.name, str(rule.alternatives[first]), str(new_alt))
            )
            rule.alternatives[first] = new_alt
            for index in reversed(covered_indices[1:]):
                del rule.alternatives[index]
            return

        # paper rule 2: the new production is contained in an old one -> retain
        covering_indices = [
            index
            for index, old in enumerate(rule.alternatives)
            if structurally_covers(flatten(old), new_flat)
        ]
        if covering_indices:
            if self.strict_order:
                offending = [
                    rule.alternatives[index]
                    for index in covering_indices
                    if _unmatched_optional_extras(
                        flatten(rule.alternatives[index]), new_flat
                    )
                ]
                if offending:
                    raise CompositionOrderError(
                        f"rule {rule.name!r}: optional/list extension "
                        f"{offending[0]} was composed before its base "
                        f"{new_alt}; the paper requires base-first order",
                        hints=(
                            "reorder the composition sequence so the unit "
                            f"contributing '{rule.name} : {new_alt}' comes "
                            "first (add an 'after' edge to the extension "
                            "unit, or compose with strict_order=False to "
                            "let containment resolve it)",
                        ),
                    )
            trace.retained.append(
                (
                    rule.name,
                    str(rule.alternatives[covering_indices[0]]),
                    str(new_alt),
                )
            )
            return

        # paper §3.2 optional composition: when two forms share the same
        # mandatory core and differ only in optional/list elements, the new
        # optionals are inserted into the existing production after their
        # anchors ("we compose any optional specification within a
        # production after the corresponding non optional specification").
        # This is what lets independent clause features — WHERE, GROUP BY,
        # HAVING — each extend ``table_expression`` (Figure 2).
        for index, old in enumerate(rule.alternatives):
            merged = _interleave_optionals(flatten(old), new_flat)
            if merged is not None:
                trace.merged.append((rule.name, str(old), str(new_alt)))
                rule.alternatives[index] = merged
                return

        # paper rule 3: unrelated productions are appended as choices
        trace.appended.append((rule.name, str(new_alt)))
        rule.add_alternative(new_alt)

    def _check_order_for_new_rule(self, rule: Rule) -> None:
        """A brand-new rule may not *start life* as a pure optional extension.

        The paper's base-first discipline applies across rules too: a unit
        contributing ``A : B [C]`` into a grammar with no rule ``A`` is
        fine (it *is* the base then), so nothing to enforce here.  The
        hook is kept for symmetry and future diagnostics.
        """
        return None
