"""Parser builder: feature selection in, measured parser out.

:class:`ParserBuilder` is the top of the pipeline — the piece a downstream
user calls.  It wraps :class:`~repro.core.product_line.GrammarProductLine`
and :class:`~repro.parsing.parser.Parser`, and records build-time metrics
(composition time, analysis time, grammar and table sizes) that the
benchmark harness (experiments E6/E7) reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..parsing.parser import Parser
from .product_line import ComposedProduct, GrammarProductLine


@dataclass(frozen=True)
class BuildMetrics:
    """Timings and sizes collected while building one parser."""

    compose_seconds: float
    analyse_seconds: float
    grammar_rules: int
    grammar_alternatives: int
    grammar_elements: int
    tokens: int
    table_entries: int
    table_conflicts: int
    selected_features: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "compose_seconds": self.compose_seconds,
            "analyse_seconds": self.analyse_seconds,
            "grammar_rules": self.grammar_rules,
            "grammar_alternatives": self.grammar_alternatives,
            "grammar_elements": self.grammar_elements,
            "tokens": self.tokens,
            "table_entries": self.table_entries,
            "table_conflicts": self.table_conflicts,
            "selected_features": self.selected_features,
        }


@dataclass(frozen=True)
class BuiltParser:
    """A ready parser plus the product and metrics behind it."""

    product: ComposedProduct
    parser: Parser
    metrics: BuildMetrics

    def parse(self, text: str, start: str | None = None):
        return self.parser.parse(text, start=start)

    def accepts(self, text: str, start: str | None = None) -> bool:
        return self.parser.accepts(text, start=start)

    def generate_source(self) -> str:
        return self.product.generate_source()


class ParserBuilder:
    """Builds tailor-made parsers from feature selections."""

    def __init__(self, product_line: GrammarProductLine) -> None:
        self.product_line = product_line

    def build(
        self,
        features: Iterable[str],
        counts: Mapping[str, int] | None = None,
        expand: bool = True,
        strict: bool = False,
        strict_order: bool = True,
        product_name: str | None = None,
    ) -> BuiltParser:
        """Compose the selected features and construct a parser.

        Args:
            features: Selected feature names.
            counts: Clone counts for cardinality features.
            expand: Auto-complete the selection to a valid configuration.
            strict: Refuse non-LL(1) composed grammars.
            strict_order: Enforce the paper's composition-order rules.
            product_name: Name for the composed grammar.
        """
        t0 = time.perf_counter()
        product = self.product_line.configure(
            features,
            counts=counts,
            expand=expand,
            strict_order=strict_order,
            product_name=product_name,
        )
        t1 = time.perf_counter()
        parser = Parser(product.grammar, strict=strict)
        t2 = time.perf_counter()

        size = product.grammar.size()
        table = parser.table.metrics()
        metrics = BuildMetrics(
            compose_seconds=t1 - t0,
            analyse_seconds=t2 - t1,
            grammar_rules=size["rules"],
            grammar_alternatives=size["alternatives"],
            grammar_elements=size["elements"],
            tokens=size["tokens"],
            table_entries=table["entries"],
            table_conflicts=table["conflicts"],
            selected_features=len(product.configuration),
        )
        return BuiltParser(product=product, parser=parser, metrics=metrics)
