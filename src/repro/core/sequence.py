"""Composition sequences: ordering and constraint checking for units.

"We use the notion of composition sequence that indicates how various
features are included or excluded."  Given the selected features and their
units, :func:`order_units` checks unit-level requires/excludes against the
selection and produces a deterministic order: the original (feature-model
pre-order) sequence, minimally reordered so every unit comes after its
``requires`` and ``after`` targets.
"""

from __future__ import annotations

from ..errors import CompositionError, ConstraintViolationError
from .unit import FeatureUnit


def check_unit_constraints(
    units: list[FeatureUnit], selection: frozenset[str]
) -> None:
    """Raise when a selected unit's requires/excludes are violated."""
    violations: list[str] = []
    for u in units:
        for required in u.requires:
            if required not in selection:
                violations.append(
                    f"feature {u.feature!r} requires {required!r}, "
                    "which is not selected"
                )
        for excluded in u.excludes:
            if excluded in selection:
                violations.append(
                    f"feature {u.feature!r} excludes {excluded!r}, "
                    "which is also selected"
                )
    if violations:
        raise ConstraintViolationError("; ".join(violations))


def order_units(
    units: list[FeatureUnit], selection: frozenset[str]
) -> list[FeatureUnit]:
    """Return the composition sequence for the selected units.

    Stable topological sort (Kahn's algorithm with original-position
    tie-breaking): dependencies come from ``requires`` and ``after``; only
    edges between *selected* units matter.  A dependency cycle is a
    :class:`~repro.errors.CompositionError`.
    """
    check_unit_constraints(units, selection)

    position = {u.feature: index for index, u in enumerate(units)}
    indegree = {u.feature: 0 for u in units}
    dependents: dict[str, list[str]] = {u.feature: [] for u in units}

    for u in units:
        for dep in tuple(u.requires) + tuple(u.after):
            if dep in position and dep != u.feature:
                dependents[dep].append(u.feature)
                indegree[u.feature] += 1

    by_name = {u.feature: u for u in units}
    ready = sorted(
        (name for name, degree in indegree.items() if degree == 0),
        key=position.__getitem__,
    )
    ordered: list[FeatureUnit] = []
    while ready:
        name = ready.pop(0)
        ordered.append(by_name[name])
        newly_ready = []
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                newly_ready.append(dependent)
        if newly_ready:
            ready = sorted(
                ready + newly_ready, key=position.__getitem__
            )
    if len(ordered) != len(units):
        stuck = sorted(name for name, degree in indegree.items() if degree > 0)
        raise CompositionError(
            "composition sequence has a dependency cycle involving: "
            + ", ".join(stuck)
        )
    return ordered
