"""Feature units: the implementation a feature contributes to the product line.

In the paper every feature carries a sub-grammar and a token file created
during decomposition; composition combines exactly the units of the
selected features.  A :class:`FeatureUnit` bundles:

* the feature name it implements,
* its sub-grammar (with the token set attached),
* unit-level ``requires``/``excludes`` constraints,
* ``after`` ordering hints for the composition sequence,
* ``removes`` — rule names this unit deletes from the composed grammar
  (the paper's "removing production rules" mechanism, used by restricting
  features such as TinySQL's single-table FROM clause).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..grammar.grammar import Grammar
from ..grammar.reader import read_grammar
from ..lexer.spec import TokenDef, TokenSet


@dataclass(frozen=True)
class FeatureUnit:
    """One feature's contribution to the grammar product line."""

    feature: str
    grammar: Grammar | None = None
    requires: tuple[str, ...] = ()
    excludes: tuple[str, ...] = ()
    after: tuple[str, ...] = ()
    removes: tuple[str, ...] = ()
    description: str = ""

    @property
    def tokens(self) -> TokenSet:
        """The unit's token file (empty when the unit has no grammar)."""
        if self.grammar is None:
            return TokenSet(self.feature)
        return self.grammar.tokens

    def __repr__(self) -> str:
        rules = 0 if self.grammar is None else len(self.grammar)
        return f"<FeatureUnit {self.feature!r}: {rules} rules>"


def unit(
    feature: str,
    grammar_text: str | None = None,
    tokens: Iterable[TokenDef] = (),
    requires: Iterable[str] = (),
    excludes: Iterable[str] = (),
    after: Iterable[str] = (),
    removes: Iterable[str] = (),
    start: str | None = None,
    description: str = "",
) -> FeatureUnit:
    """Build a feature unit from grammar DSL text and token definitions.

    Args:
        feature: Feature name this unit implements.
        grammar_text: Sub-grammar in the DSL of
            :func:`repro.grammar.read_grammar`; ``None`` for marker
            features that only exist in the feature model.
        tokens: Token definitions the sub-grammar introduces.
        requires / excludes / after / removes: See :class:`FeatureUnit`.
        start: Explicit start rule of the sub-grammar.
        description: Human-readable summary for documentation tools.
    """
    grammar: Grammar | None = None
    token_set = TokenSet(feature, tokens)
    if grammar_text is not None:
        grammar = read_grammar(grammar_text, name=feature, tokens=token_set)
        if start is not None:
            grammar.start = start
    elif tokens:
        grammar = Grammar(feature, tokens=token_set)
    return FeatureUnit(
        feature=feature,
        grammar=grammar,
        requires=tuple(requires),
        excludes=tuple(excludes),
        after=tuple(after),
        removes=tuple(removes),
        description=description,
    )
