"""Feature units: the implementation a feature contributes to the product line.

In the paper every feature carries a sub-grammar and a token file created
during decomposition; composition combines exactly the units of the
selected features.  A :class:`FeatureUnit` bundles:

* the feature name it implements,
* its sub-grammar (with the token set attached),
* unit-level ``requires``/``excludes`` constraints,
* ``after`` ordering hints for the composition sequence,
* ``removes`` — rule names this unit deletes from the composed grammar
  (the paper's "removing production rules" mechanism, used by restricting
  features such as TinySQL's single-table FROM clause).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping

from ..grammar.grammar import Grammar
from ..grammar.reader import read_grammar
from ..lexer.spec import TokenDef, TokenSet


@dataclass(frozen=True)
class FeatureUnit:
    """One feature's contribution to the grammar product line."""

    feature: str
    grammar: Grammar | None = None
    requires: tuple[str, ...] = ()
    excludes: tuple[str, ...] = ()
    after: tuple[str, ...] = ()
    removes: tuple[str, ...] = ()
    description: str = ""

    @property
    def tokens(self) -> TokenSet:
        """The unit's token file (empty when the unit has no grammar)."""
        if self.grammar is None:
            return TokenSet(self.feature)
        return self.grammar.tokens

    def __repr__(self) -> str:
        rules = 0 if self.grammar is None else len(self.grammar)
        return f"<FeatureUnit {self.feature!r}: {rules} rules>"


@dataclass(frozen=True)
class UnitSignature:
    """The composition-relevant surface of one feature unit.

    A signature is everything another unit could *collide* with without
    composing full grammars: the token definitions the unit contributes
    (name -> ``(kind, pattern, priority, skip)``), the rule names it
    defines or refines, the rules it removes, and its model-level
    constraints.  The :mod:`repro.lint` pairwise interaction pass
    compares signatures instead of products, which is what makes
    checking every valid 2-feature combination affordable.
    """

    feature: str
    tokens: Mapping[str, tuple[str, str, int, bool]]
    rules: frozenset[str]
    removes: frozenset[str]
    requires: frozenset[str]
    excludes: frozenset[str]

    def token_conflicts(self, other: "UnitSignature") -> list[str]:
        """Token names the two units define incompatibly."""
        return sorted(
            name
            for name, shape in self.tokens.items()
            if name in other.tokens and other.tokens[name] != shape
        )


@lru_cache(maxsize=None)
def unit_signature(unit: FeatureUnit) -> UnitSignature:
    """Compute (and cache per unit instance) a unit's signature.

    Units are immutable and the SQL registry reuses the same objects
    across product-line builds, so each signature is derived once per
    process — the same caching contract as
    :func:`repro.service.fingerprint.unit_digest`.
    """
    tokens: dict[str, tuple[str, str, int, bool]] = {
        d.name: (d.kind, d.pattern, d.priority, d.skip) for d in unit.tokens
    }
    rules: frozenset[str] = frozenset(
        unit.grammar.rule_names() if unit.grammar is not None else ()
    )
    return UnitSignature(
        feature=unit.feature,
        tokens=tokens,
        rules=rules,
        removes=frozenset(unit.removes),
        requires=frozenset(unit.requires),
        excludes=frozenset(unit.excludes),
    )


def unit(
    feature: str,
    grammar_text: str | None = None,
    tokens: Iterable[TokenDef] = (),
    requires: Iterable[str] = (),
    excludes: Iterable[str] = (),
    after: Iterable[str] = (),
    removes: Iterable[str] = (),
    start: str | None = None,
    description: str = "",
) -> FeatureUnit:
    """Build a feature unit from grammar DSL text and token definitions.

    Args:
        feature: Feature name this unit implements.
        grammar_text: Sub-grammar in the DSL of
            :func:`repro.grammar.read_grammar`; ``None`` for marker
            features that only exist in the feature model.
        tokens: Token definitions the sub-grammar introduces.
        requires / excludes / after / removes: See :class:`FeatureUnit`.
        start: Explicit start rule of the sub-grammar.
        description: Human-readable summary for documentation tools.
    """
    grammar: Grammar | None = None
    token_set = TokenSet(feature, tokens)
    if grammar_text is not None:
        grammar = read_grammar(grammar_text, name=feature, tokens=token_set)
        if start is not None:
            grammar.start = start
    elif tokens:
        grammar = Grammar(feature, tokens=token_set)
    return FeatureUnit(
        feature=feature,
        grammar=grammar,
        requires=tuple(requires),
        excludes=tuple(excludes),
        after=tuple(after),
        removes=tuple(removes),
        description=description,
    )
