"""Cross-dialect transpilation: render, analyze, translate.

Public API::

    from repro.transpile import (
        RenderOptions, SqlRenderer, render_sql, UnrenderableNodeError,
        Requirement, CapabilityReport, analyze,
        TranspileError, TranslationResult, translate,
    )
"""

from .analyze import CapabilityReport, Requirement, analyze
from .render import RenderOptions, SqlRenderer, UnrenderableNodeError, render_sql
from .translate import (
    REPORT_KIND,
    REPORT_VERSION,
    TranslationResult,
    TranspileError,
    translate,
)

__all__ = [
    "CapabilityReport",
    "REPORT_KIND",
    "REPORT_VERSION",
    "RenderOptions",
    "Requirement",
    "SqlRenderer",
    "TranslationResult",
    "TranspileError",
    "UnrenderableNodeError",
    "analyze",
    "render_sql",
    "translate",
]
