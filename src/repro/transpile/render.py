"""Feature-aware SQL renderer over :mod:`repro.sql.ast`.

The product line composes a *parser* per dialect; this module is the
inverse direction: print an AST using only the syntax the target
dialect's selected feature units provide.  Three design rules keep the
output honest:

* **Precedence-driven parenthesization.**  Every expression node knows
  the precedence level its grammar production produces and the minimum
  level each operand position requires; parentheses are inserted exactly
  when an operand's own level is too low.  The ladder mirrors the
  composed expression grammar (``boolean_value_expression`` down to
  ``value_expression_primary``)::

      1 OR · 2 AND · 3 NOT · 4 IS-test · 5 predicate/comparison ·
      6 || · 7 + - · 8 * / · 9 unary sign · 10 primary

* **Feature-keyed syntax choices.**  Where the grammar offers
  per-feature spellings the renderer consults :class:`RenderOptions`
  — e.g. ``LIMIT n`` vs ``FETCH FIRST n ROWS ONLY`` (units ``Limit`` /
  ``FetchFirst``), ``SOME`` vs ``ANY`` (``SomeQuantifier`` /
  ``AnyQuantifier``), alias ``AS`` (``DerivedColumn.As`` /
  ``CorrelationName.As``), delimited identifiers
  (``DelimitedIdentifiers``).  Lossless degradations are recorded in
  :attr:`SqlRenderer.rewrites` so translation reports can surface them.

* **Never silently wrong.**  A node that cannot be expressed with the
  selected features raises :class:`UnrenderableNodeError` (``E0402``)
  naming the missing unit, instead of emitting SQL the target parser
  would reject or reinterpret.

Rendering with default (permissive) options emits the full-dialect
surface syntax and is what the round-trip property suite exercises:
``parse ∘ render ∘ parse`` must be the identity on ASTs for every
preset dialect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..diagnostics.model import UNRENDERABLE
from ..errors import ReproError
from ..sql import ast

__all__ = ["RenderOptions", "SqlRenderer", "UnrenderableNodeError", "render_sql"]


class UnrenderableNodeError(ReproError):
    """An AST node has no spelling under the selected feature units."""

    code = UNRENDERABLE

    def __init__(
        self,
        message: str,
        *,
        construct: str | None = None,
        features: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        #: Human label of the construct that failed to render.
        self.construct = construct or message
        #: Feature units, any one of which would make it renderable.
        self.features = tuple(features)
        self.hints = tuple(
            f"enable feature '{name}' to make this construct expressible"
            for name in self.features
        )


@dataclass(frozen=True)
class RenderOptions:
    """Target-dialect knobs for the renderer.

    ``features`` is the *resolved* selected-unit set of a composed
    product (``product.configuration.selected``); ``None`` means
    permissive — every construct may be used (full-dialect rendering).
    ``keywords`` is the target scanner's keyword vocabulary, used to
    decide when an identifier must be delimited.
    """

    features: frozenset[str] | None = None
    keywords: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def for_product(cls, product) -> "RenderOptions":
        return cls(
            features=frozenset(product.configuration.selected),
            keywords=frozenset(
                t.name for t in product.grammar.tokens if t.kind == "keyword"
            ),
        )

    def has(self, *units: str) -> bool:
        """True when any of ``units`` is selected (or options are permissive)."""
        if self.features is None:
            return True
        return any(u in self.features for u in units)


#: Precedence ladder; see module docstring.
_OR, _AND, _NOT, _IS, _CMP, _CONCAT, _ADD, _MUL, _UNARY, _PRIMARY = range(1, 11)

#: op -> (result level, left-operand minimum, right-operand minimum)
_BINARY_LEVELS = {
    "OR": (_OR, _OR, _AND),
    "AND": (_AND, _AND, _NOT),
    "=": (_CMP, _CONCAT, _CONCAT),
    "<>": (_CMP, _CONCAT, _CONCAT),
    "<": (_CMP, _CONCAT, _CONCAT),
    ">": (_CMP, _CONCAT, _CONCAT),
    "<=": (_CMP, _CONCAT, _CONCAT),
    ">=": (_CMP, _CONCAT, _CONCAT),
    "OVERLAPS": (_CMP, _CONCAT, _CONCAT),
    "||": (_CONCAT, _CONCAT, _ADD),
    "+": (_ADD, _ADD, _MUL),
    "-": (_ADD, _ADD, _MUL),
    "*": (_MUL, _MUL, _UNARY),
    "/": (_MUL, _MUL, _UNARY),
}

_BARE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Interval qualifier vocabulary, for splitting the builder's flattened
#: ``"<value> <qualifier>"`` interval literal back apart.
_INTERVAL_FIELDS = frozenset({"YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND"})

#: Heads spelled without an argument list.
_BARE_FUNCTIONS = frozenset(
    {
        "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
        "LOCALTIME", "LOCALTIMESTAMP",
        "USER", "CURRENT_USER", "SESSION_USER", "SYSTEM_USER",
        "CURRENT_ROLE", "CURRENT_PATH",
    }
)

_TYPE_KEYWORDS = {
    "char": "CHAR",
    "varchar": "VARCHAR",
    "numeric": "NUMERIC",
    "integer": "INTEGER",
    "real": "REAL",
    "boolean": "BOOLEAN",
    "date": "DATE",
    "time": "TIME",
    "timestamp": "TIMESTAMP",
    "interval": "INTERVAL",
    "blob": "BLOB",
    "clob": "CLOB",
}


def render_sql(node, options: RenderOptions | None = None) -> str:
    """Render any AST node (script, statement, query, expression)."""
    return SqlRenderer(options).render(node)


class SqlRenderer:
    """One rendering pass; collects lossless-rewrite notes in ``rewrites``."""

    def __init__(self, options: RenderOptions | None = None) -> None:
        self.options = options or RenderOptions()
        #: Human-readable notes about feature-driven degradations applied
        #: during this pass (e.g. "FETCH FIRST degraded to LIMIT").
        self.rewrites: list[str] = []

    # -- entry points -------------------------------------------------------

    def render(self, node) -> str:
        if isinstance(node, ast.Script):
            return self.render_script(node)
        if isinstance(node, ast.Statement):
            return self.render_statement(node)
        if isinstance(node, ast.Query):
            return self.render_query(node)
        if isinstance(node, ast.Expression):
            return self._expr(node, 0)
        raise UnrenderableNodeError(
            f"cannot render object of type {type(node).__name__}"
        )

    def render_script(self, script: ast.Script) -> str:
        return " ;\n".join(self.render_statement(s) for s in script.statements)

    # -- helpers ------------------------------------------------------------

    def _has(self, *units: str) -> bool:
        return self.options.has(*units)

    def _require(self, construct: str, *units: str) -> None:
        if not self._has(*units):
            raise UnrenderableNodeError(
                f"{construct} is not expressible in the target dialect",
                construct=construct,
                features=units,
            )

    def _ident(self, name: str) -> str:
        if len(name) >= 2 and name[0] == '"' and name[-1] == '"':
            # raw source text of a delimited identifier (builder paths
            # that keep token text verbatim); unwrap before re-quoting
            name = name[1:-1].replace('""', '"')
        if (
            _BARE_IDENTIFIER.match(name)
            and name.upper() not in self.options.keywords
        ):
            return name
        self._require(f"identifier {name!r}", "DelimitedIdentifiers")
        return '"' + name.replace('"', '""') + '"'

    def _chain(self, parts: tuple[str, ...]) -> str:
        if len(parts) > 1:
            self._require("qualified name", "QualifiedNames")
        return ".".join(self._ident(p) for p in parts)

    # -- expressions --------------------------------------------------------

    def _expr(self, node: ast.Expression, min_level: int) -> str:
        text, level = self._expr_with_level(node)
        if level < min_level:
            self._require("parenthesized expression", "ParenthesizedExpression")
            return f"({text})"
        return text

    def _expr_with_level(self, node: ast.Expression) -> tuple[str, int]:
        method = getattr(self, f"_render_{type(node).__name__}", None)
        if method is None:
            raise UnrenderableNodeError(
                f"no renderer for AST node {type(node).__name__}"
            )
        return method(node)

    def _render_Literal(self, node: ast.Literal) -> tuple[str, int]:
        kind, value = node.type_name, node.value
        if kind == "integer":
            return str(value), _PRIMARY
        if kind == "numeric":
            return repr(float(value)), _PRIMARY
        if kind == "string":
            return "'" + str(value).replace("'", "''") + "'", _PRIMARY
        if kind == "nstring":
            return "N'" + str(value).replace("'", "''") + "'", _PRIMARY
        if kind == "ustring":
            return "U&'" + str(value).replace("'", "''") + "'", _PRIMARY
        if kind == "binary":
            return f"X'{value}'", _PRIMARY
        if kind == "boolean":
            if value is None:
                return "UNKNOWN", _PRIMARY
            return ("TRUE" if value else "FALSE"), _PRIMARY
        if kind == "null":
            return "NULL", _PRIMARY
        if kind in ("date", "time", "timestamp"):
            return f"{kind.upper()} '{value}'", _PRIMARY
        if kind == "interval":
            return self._render_interval(str(value)), _PRIMARY
        if kind in ("field", "trim_spec"):
            # only meaningful inside EXTRACT / TRIM argument positions
            return str(value), _PRIMARY
        # engine-constructed literal without a source kind: render by type
        if value is None:
            return "NULL", _PRIMARY
        if isinstance(value, bool):
            return ("TRUE" if value else "FALSE"), _PRIMARY
        if isinstance(value, (int, float)):
            return str(value), _PRIMARY
        return "'" + str(value).replace("'", "''") + "'", _PRIMARY

    def _render_interval(self, flattened: str) -> str:
        """Invert the builder's ``"<value> <qualifier>"`` flattening.

        The qualifier is one interval field or ``X TO Y``; both come
        from a closed keyword vocabulary, so splitting from the right is
        unambiguous unless the literal's value itself ends in a field
        name — a shape the workload generators never produce.
        """
        words = flattened.split(" ")
        if (
            len(words) >= 4
            and words[-2] == "TO"
            and words[-1] in _INTERVAL_FIELDS
            and words[-3] in _INTERVAL_FIELDS
        ):
            value, qualifier = " ".join(words[:-3]), " ".join(words[-3:])
        elif len(words) >= 2 and words[-1] in _INTERVAL_FIELDS:
            value, qualifier = " ".join(words[:-1]), words[-1]
        else:  # no recognizable qualifier; emit verbatim
            value, qualifier = flattened, ""
        quoted = "'" + value.replace("'", "''") + "'"
        return f"INTERVAL {quoted} {qualifier}".rstrip()

    def _render_Default(self, node: ast.Default) -> tuple[str, int]:
        return "DEFAULT", _PRIMARY

    def _render_ColumnRef(self, node: ast.ColumnRef) -> tuple[str, int]:
        return self._chain(node.parts), _PRIMARY

    def _render_Star(self, node: ast.Star) -> tuple[str, int]:
        if node.table is not None:
            self._require("qualified asterisk", "QualifiedAsterisk")
            # the builder joins the qualifier chain with "."
            qualifier = ".".join(
                self._ident(p) for p in node.table.split(".")
            )
            return f"{qualifier}.*", _PRIMARY
        return "*", _PRIMARY

    def _render_BinaryOp(self, node: ast.BinaryOp) -> tuple[str, int]:
        levels = _BINARY_LEVELS.get(node.op)
        if levels is None:
            raise UnrenderableNodeError(f"unknown binary operator {node.op!r}")
        level, left_min, right_min = levels
        left = self._expr(node.left, left_min)
        right = self._expr(node.right, right_min)
        return f"{left} {node.op} {right}", level

    def _render_UnaryOp(self, node: ast.UnaryOp) -> tuple[str, int]:
        if node.op == "NOT":
            return f"NOT {self._expr(node.operand, _IS)}", _NOT
        return f"{node.op} {self._expr(node.operand, _PRIMARY)}", _UNARY

    def _render_IsNull(self, node: ast.IsNull) -> tuple[str, int]:
        not_kw = " NOT" if node.negated else ""
        return f"{self._expr(node.operand, _CONCAT)} IS{not_kw} NULL", _CMP

    def _render_Between(self, node: ast.Between) -> tuple[str, int]:
        not_kw = "NOT " if node.negated else ""
        return (
            f"{self._expr(node.operand, _CONCAT)} {not_kw}BETWEEN "
            f"{self._expr(node.low, _CONCAT)} AND {self._expr(node.high, _CONCAT)}",
            _CMP,
        )

    def _render_InList(self, node: ast.InList) -> tuple[str, int]:
        not_kw = "NOT " if node.negated else ""
        items = ", ".join(self._expr(i, _CONCAT) for i in node.items)
        return f"{self._expr(node.operand, _CONCAT)} {not_kw}IN ({items})", _CMP

    def _render_InSubquery(self, node: ast.InSubquery) -> tuple[str, int]:
        not_kw = "NOT " if node.negated else ""
        sub = self.render_query(node.query)
        return f"{self._expr(node.operand, _CONCAT)} {not_kw}IN ({sub})", _CMP

    def _render_Like(self, node: ast.Like) -> tuple[str, int]:
        not_kw = "NOT " if node.negated else ""
        verb = "SIMILAR TO" if node.similar else "LIKE"
        text = (
            f"{self._expr(node.operand, _CONCAT)} {not_kw}{verb} "
            f"{self._expr(node.pattern, _CONCAT)}"
        )
        if node.escape is not None:
            text += f" ESCAPE {self._expr(node.escape, _CONCAT)}"
        return text, _CMP

    def _render_Exists(self, node: ast.Exists) -> tuple[str, int]:
        return f"EXISTS ({self.render_query(node.query)})", _CMP

    def _render_UniqueSubquery(self, node: ast.UniqueSubquery) -> tuple[str, int]:
        return f"UNIQUE ({self.render_query(node.query)})", _CMP

    def _render_Quantified(self, node: ast.Quantified) -> tuple[str, int]:
        quantifier = node.quantifier
        if quantifier == "SOME" and not self._has("SomeQuantifier"):
            if self._has("AnyQuantifier"):
                quantifier = "ANY"
                self.rewrites.append("SOME quantifier rewritten to ANY")
            else:
                self._require("SOME quantifier", "SomeQuantifier", "AnyQuantifier")
        elif quantifier == "ANY" and not self._has("AnyQuantifier"):
            if self._has("SomeQuantifier"):
                quantifier = "SOME"
                self.rewrites.append("ANY quantifier rewritten to SOME")
            else:
                self._require("ANY quantifier", "AnyQuantifier", "SomeQuantifier")
        return (
            f"{self._expr(node.operand, _CONCAT)} {node.op} {quantifier} "
            f"({self.render_query(node.query)})",
            _CMP,
        )

    def _render_ScalarSubquery(self, node: ast.ScalarSubquery) -> tuple[str, int]:
        return f"({self.render_query(node.query)})", _PRIMARY

    def _render_IsDistinctFrom(self, node: ast.IsDistinctFrom) -> tuple[str, int]:
        not_kw = " NOT" if node.negated else ""
        return (
            f"{self._expr(node.left, _CONCAT)} IS{not_kw} DISTINCT FROM "
            f"{self._expr(node.right, _CONCAT)}",
            _CMP,
        )

    def _render_BooleanIs(self, node: ast.BooleanIs) -> tuple[str, int]:
        truth = {True: "TRUE", False: "FALSE", None: "UNKNOWN"}[node.truth]
        not_kw = " NOT" if node.negated else ""
        return f"{self._expr(node.operand, _CMP)} IS{not_kw} {truth}", _IS

    def _render_Match(self, node: ast.Match) -> tuple[str, int]:
        parts = [self._expr(node.operand, _CONCAT), "MATCH"]
        if node.unique:
            parts.append("UNIQUE")
        if node.option:
            parts.append(node.option)
        parts.append(f"({self.render_query(node.query)})")
        return " ".join(parts), _CMP

    def _render_AtTimeZone(self, node: ast.AtTimeZone) -> tuple[str, int]:
        operand = self._expr(node.operand, _PRIMARY)
        if node.zone is None:
            return f"{operand} AT LOCAL", _UNARY
        return f"{operand} AT TIME ZONE {self._expr(node.zone, _PRIMARY)}", _UNARY

    def _render_CaseExpr(self, node: ast.CaseExpr) -> tuple[str, int]:
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(self._expr(node.operand, _CONCAT))
        for condition, result in node.whens:
            level = _CONCAT if node.operand is not None else 0
            parts.append(
                f"WHEN {self._expr(condition, level)} "
                f"THEN {self._expr(result, 0)}"
            )
        if node.else_result is not None:
            parts.append(f"ELSE {self._expr(node.else_result, 0)}")
        parts.append("END")
        return " ".join(parts), _PRIMARY

    def _render_Cast(self, node: ast.Cast) -> tuple[str, int]:
        operand = self._expr(node.operand, 0)
        type_text = self._type_text(node.type_spec, node.type_name)
        return f"CAST({operand} AS {type_text})", _PRIMARY

    def _type_text(self, spec: ast.TypeSpec | None, fallback_name: str) -> str:
        if spec is not None and spec.text:
            return _tidy_type_text(spec.text)
        name = spec.name if spec is not None else fallback_name
        keyword = _TYPE_KEYWORDS.get(name, name.upper())
        params = spec.parameters if spec is not None else ()
        if params:
            return f"{keyword}({', '.join(str(p) for p in params)})"
        return keyword

    def _render_FunctionCall(self, node: ast.FunctionCall) -> tuple[str, int]:
        name, args = node.name, node.args
        if name == "NEXT VALUE FOR":
            chain = self._chain(args[0].parts)
            return f"NEXT VALUE FOR {chain}", _PRIMARY
        if name in _BARE_FUNCTIONS:
            if args and name not in (
                "USER", "CURRENT_USER", "SESSION_USER", "SYSTEM_USER",
                "CURRENT_ROLE", "CURRENT_PATH",
            ):
                # datetime head with a time precision
                return f"{name}({self._expr(args[0], 0)})", _PRIMARY
            return name, _PRIMARY
        if name == "EXTRACT":
            field_name, operand = args
            return (
                f"EXTRACT({field_name.value} FROM {self._expr(operand, 0)})",
                _PRIMARY,
            )
        if name == "SUBSTRING":
            text = f"SUBSTRING({self._expr(args[0], 0)} FROM {self._expr(args[1], 0)}"
            if len(args) > 2:
                text += f" FOR {self._expr(args[2], 0)}"
            return text + ")", _PRIMARY
        if name == "POSITION":
            return (
                f"POSITION({self._expr(args[0], 0)} IN {self._expr(args[1], 0)})",
                _PRIMARY,
            )
        if name == "OVERLAY":
            text = (
                f"OVERLAY({self._expr(args[0], 0)} PLACING "
                f"{self._expr(args[1], 0)} FROM {self._expr(args[2], 0)}"
            )
            if len(args) > 3:
                text += f" FOR {self._expr(args[3], 0)}"
            return text + ")", _PRIMARY
        if name == "TRIM":
            return self._render_trim(args), _PRIMARY
        if name in ("TRANSLATE", "CONVERT"):
            target = self._chain(args[1].parts)
            return f"{name}({self._expr(args[0], 0)} USING {target})", _PRIMARY
        rendered = ", ".join(self._expr(a, 0) for a in args)
        return f"{self._function_name(name)}({rendered})", _PRIMARY

    def _function_name(self, name: str) -> str:
        """Spell a routine name; delimit parts the scanner couldn't rescan.

        Special-form heads (COALESCE, MOD, ...) are keywords and must
        stay bare, so unlike :meth:`_ident` a keyword-shaped part is NOT
        quoted — only parts that are lexically unspeakable as plain
        identifiers (spaces, punctuation) are delimited.
        """
        parts = []
        for part in name.split("."):
            if _BARE_IDENTIFIER.match(part):
                parts.append(part)
            else:
                self._require(f"identifier {part!r}", "DelimitedIdentifiers")
                parts.append('"' + part.replace('"', '""') + '"')
        return ".".join(parts)

    def _render_trim(self, args: tuple[ast.Expression, ...]) -> str:
        spec = None
        exprs = list(args)
        if (
            exprs
            and isinstance(exprs[0], ast.Literal)
            and exprs[0].type_name == "trim_spec"
        ):
            spec = str(exprs.pop(0).value)
        if spec is not None:
            if len(exprs) == 1:
                return f"TRIM({spec} FROM {self._expr(exprs[0], 0)})"
            return (
                f"TRIM({spec} {self._expr(exprs[0], 0)} "
                f"FROM {self._expr(exprs[1], 0)})"
            )
        if len(exprs) == 2:
            return f"TRIM({self._expr(exprs[0], 0)} FROM {self._expr(exprs[1], 0)})"
        return f"TRIM({self._expr(exprs[0], 0)})"

    def _render_AggregateCall(self, node: ast.AggregateCall) -> tuple[str, int]:
        if node.argument is None:
            text = "COUNT(*)"
        else:
            quantifier = f"{node.quantifier} " if node.quantifier else ""
            text = f"{node.function}({quantifier}{self._expr(node.argument, 0)})"
        if node.filter_condition is not None:
            self._require("FILTER clause", "FilterClause")
            text += f" FILTER (WHERE {self._expr(node.filter_condition, 0)})"
        return text, _PRIMARY

    def _render_WindowCall(self, node: ast.WindowCall) -> tuple[str, int]:
        function, _ = self._expr_with_level(node.function)
        if isinstance(node.window, str):
            return f"{function} OVER {self._ident(node.window)}", _PRIMARY
        return f"{function} OVER {self._window_spec(node.window)}", _PRIMARY

    def _window_spec(self, spec: ast.WindowSpec) -> str:
        # grammar order: partition clause, existing window name, order, frame
        parts = []
        if spec.partition_by:
            self._require("PARTITION BY", "PartitionClause")
            parts.append(
                "PARTITION BY "
                + ", ".join(self._expr(c, _PRIMARY) for c in spec.partition_by)
            )
        if spec.existing:
            self._require("named window reference", "ExistingWindowName")
            parts.append(self._ident(spec.existing))
        if spec.order_by:
            self._require("window ORDER BY", "WindowOrderClause")
            parts.append("ORDER BY " + self._sort_specs(spec.order_by))
        if spec.frame:
            self._require("window frame", "FrameClause")
            parts.append(spec.frame)
        return "(" + " ".join(parts) + ")"

    # -- queries ------------------------------------------------------------

    def render_query(self, query: ast.Query) -> str:
        parts = []
        if query.ctes:
            self._require("WITH clause", "WithClause")
            if query.recursive:
                self._require("WITH RECURSIVE", "RecursiveWith")
            ctes = ", ".join(self._cte(c) for c in query.ctes)
            recursive = "RECURSIVE " if query.recursive else ""
            parts.append(f"WITH {recursive}{ctes}")
        parts.append(self._body(query.body, level="body"))
        if query.order_by:
            self._require("ORDER BY", "OrderBy")
            parts.append("ORDER BY " + self._sort_specs(query.order_by))
        parts.extend(self._limit_clauses(query))
        return " ".join(parts)

    def _limit_clauses(self, query: ast.Query) -> list[str]:
        parts = []
        limit_text = None
        if query.limit is not None:
            style = query.limit_style or "limit"
            if style == "fetch":
                if self._has("FetchFirst"):
                    limit_text = f"FETCH FIRST {query.limit} ROWS ONLY"
                elif self._has("Limit"):
                    limit_text = f"LIMIT {query.limit}"
                    self.rewrites.append(
                        "FETCH FIRST ... ROWS ONLY degraded to LIMIT"
                    )
                else:
                    self._require("row limiting", "FetchFirst", "Limit")
            else:
                if self._has("Limit"):
                    limit_text = f"LIMIT {query.limit}"
                elif self._has("FetchFirst"):
                    limit_text = f"FETCH FIRST {query.limit} ROWS ONLY"
                    self.rewrites.append(
                        "LIMIT promoted to FETCH FIRST ... ROWS ONLY"
                    )
                else:
                    self._require("row limiting", "Limit", "FetchFirst")
        # grammar order: LIMIT, then OFFSET, then FETCH FIRST
        if limit_text is not None and limit_text.startswith("LIMIT"):
            parts.append(limit_text)
        if query.offset is not None:
            self._require("OFFSET", "Offset")
            parts.append(f"OFFSET {query.offset}")
        if limit_text is not None and limit_text.startswith("FETCH"):
            parts.append(limit_text)
        return parts

    def _cte(self, cte: ast.CommonTableExpr) -> str:
        columns = ""
        if cte.columns:
            self._require("WITH column list", "WithColumnList")
            columns = " (" + ", ".join(self._ident(c) for c in cte.columns) + ")"
        return f"{self._ident(cte.name)}{columns} AS ({self.render_query(cte.query)})"

    def _sort_specs(self, specs: tuple[ast.SortSpec, ...]) -> str:
        rendered = []
        # grammar order: sort key, ASC/DESC, NULLS ordering, COLLATE
        for spec in specs:
            text = self._expr(spec.expression, 0)
            if spec.descending:
                self._require("DESC ordering", "Descending")
                text += " DESC"
            if spec.nulls_last is not None:
                self._require("NULLS FIRST/LAST", "NullOrdering")
                text += " NULLS LAST" if spec.nulls_last else " NULLS FIRST"
            if spec.collation:
                self._require("COLLATE", "CollateClause")
                text += " COLLATE " + ".".join(
                    self._ident(p) for p in spec.collation
                )
            rendered.append(text)
        return ", ".join(rendered)

    def _body(self, body: ast.QueryBody, level: str) -> str:
        """Render a query body at grammar ``level``: body > term > primary."""
        if isinstance(body, ast.SetOperation):
            return self._set_operation(body, level)
        if isinstance(body, ast.Select):
            return self._select(body)
        if isinstance(body, ast.Values):
            self._require("VALUES constructor", "TableValueConstructor")
            return self._values(body)
        if isinstance(body, ast.ExplicitTable):
            self._require("TABLE statement", "ExplicitTable")
            return f"TABLE {self._chain(body.parts)}"
        raise UnrenderableNodeError(
            f"cannot render query body {type(body).__name__}"
        )

    def _set_operation(self, op: ast.SetOperation, level: str) -> str:
        if op.kind in ("union", "except"):
            feature = "Union" if op.kind == "union" else "Except"
            self._require(f"{op.kind.upper()} set operation", feature)
            if level != "body":
                self._require("nested set operation", "NestedQuery")
                return f"({self._set_operation(op, 'body')})"
            left = self._body(op.left, "body")
            right = self._body(op.right, "term")
            keyword = op.kind.upper()
        else:
            self._require("INTERSECT set operation", "Intersect")
            if level == "primary":
                self._require("nested set operation", "NestedQuery")
                return f"({self._set_operation(op, 'term')})"
            left = self._body(op.left, "term")
            right = self._body(op.right, "primary")
            keyword = "INTERSECT"
        text = f"{left} {keyword}"
        if op.quantifier:
            self._require(
                "set-operation quantifier",
                "SetOpQuantifier.All" if op.quantifier == "ALL"
                else "SetOpQuantifier.Distinct",
            )
            text += f" {op.quantifier}"
        if op.corresponding:
            self._require("CORRESPONDING", "Corresponding")
            text += " CORRESPONDING"
            if op.corresponding_by:
                self._require("CORRESPONDING BY", "CorrespondingBy")
                text += (
                    " BY ("
                    + ", ".join(self._ident(c) for c in op.corresponding_by)
                    + ")"
                )
        return f"{text} {right}"

    def _select(self, select: ast.Select) -> str:
        parts = ["SELECT"]
        if select.quantifier:
            self._require(
                "SELECT quantifier",
                "SetQuantifier.DISTINCT" if select.quantifier == "DISTINCT"
                else "SetQuantifier.ALL",
            )
            parts.append(select.quantifier)
        parts.append(self._select_items(select.items))
        if select.into:
            self._require("SELECT INTO", "SelectInto")
            parts.append("INTO " + ", ".join(self._ident(i) for i in select.into))
        if not select.from_tables:
            raise UnrenderableNodeError(
                "SELECT without a FROM clause has no composed-grammar spelling",
                construct="FROM-less SELECT",
                features=("From",),
            )
        if len(select.from_tables) > 1:
            self._require("multiple FROM tables", "MultipleTables")
        parts.append(
            "FROM " + ", ".join(self._table_ref(t) for t in select.from_tables)
        )
        if select.where is not None:
            self._require("WHERE clause", "Where")
            parts.append(f"WHERE {self._expr(select.where, 0)}")
        group = self._group_by(select)
        if group:
            parts.append(group)
        if select.having is not None:
            self._require("HAVING clause", "Having")
            parts.append(f"HAVING {self._expr(select.having, 0)}")
        if select.windows:
            self._require("WINDOW clause", "Window")
            parts.append(
                "WINDOW "
                + ", ".join(
                    f"{self._ident(w.name)} AS {self._window_spec(w.spec)}"
                    for w in select.windows
                )
            )
        # grammar order: SAMPLE PERIOD, EPOCH DURATION, LIFETIME, OUTPUT ACTION
        if select.sample_period is not None:
            self._require("SAMPLE PERIOD", "SamplePeriod")
            parts.append(f"SAMPLE PERIOD {select.sample_period}")
        if select.epoch_duration is not None:
            self._require("EPOCH DURATION", "EpochDuration")
            parts.append(f"EPOCH DURATION {select.epoch_duration}")
        if select.lifetime is not None:
            self._require("LIFETIME", "QueryLifetime")
            parts.append(f"LIFETIME {select.lifetime}")
        if select.output_action is not None:
            self._require("OUTPUT ACTION", "OutputAction")
            parts.append(f"OUTPUT ACTION {self._ident(select.output_action)}")
        return " ".join(parts)

    def _select_items(self, items: tuple) -> str:
        if len(items) == 1 and isinstance(items[0], ast.Star) and items[0].table is None:
            self._require("select-list asterisk", "Asterisk")
            return "*"
        if len(items) > 1:
            self._require("multiple select items", "SelectSublist.Multiple")
        rendered = []
        for item in items:
            if isinstance(item, ast.Star):
                text, _ = self._render_Star(item)
                rendered.append(text)
                continue
            text = self._expr(item.expression, 0)
            if item.alias is not None:
                self._require("column alias", "DerivedColumn.As")
                text += f" AS {self._ident(item.alias)}"
            rendered.append(text)
        return ", ".join(rendered)

    def _group_by(self, select: ast.Select) -> str | None:
        elements: tuple = select.grouping
        if not elements and select.group_by:
            # engine-constructed Select: reassemble from the flat view
            if select.grouping_kind is None:
                elements = tuple(select.group_by)
            else:
                elements = (
                    ast.GroupingElement(select.grouping_kind, tuple(select.group_by)),
                )
        if not elements:
            return None
        self._require("GROUP BY", "GroupBy")
        return "GROUP BY " + ", ".join(
            self._grouping_element(e) for e in elements
        )

    def _grouping_element(self, element) -> str:
        if not isinstance(element, ast.GroupingElement):
            return self._expr(element, _PRIMARY)
        if element.kind == "empty":
            self._require("empty grouping set", "EmptyGroupingSet")
            return "( )"
        columns = ", ".join(self._grouping_element(e) for e in element.elements)
        if element.kind == "rollup":
            self._require("ROLLUP", "Rollup")
            return f"ROLLUP ({columns})"
        if element.kind == "cube":
            self._require("CUBE", "Cube")
            return f"CUBE ({columns})"
        self._require("GROUPING SETS", "GroupingSets")
        return f"GROUPING SETS ({columns})"

    def _table_ref(self, ref) -> str:
        if isinstance(ref, ast.NamedTable):
            text = self._chain(ref.parts)
            if ref.alias is not None:
                self._require("table alias", "CorrelationName")
                text += f" {self._alias(ref.alias)}"
            return text
        if isinstance(ref, ast.DerivedTable):
            self._require("derived table", "DerivedTable")
            prefix = ""
            if ref.lateral:
                self._require("LATERAL", "LateralDerivedTable")
                prefix = "LATERAL "
            return (
                f"{prefix}({self.render_query(ref.query)}) {self._alias(ref.alias)}"
            )
        if isinstance(ref, ast.Join):
            return self._join(ref)
        raise UnrenderableNodeError(
            f"cannot render table reference {type(ref).__name__}"
        )

    def _alias(self, alias: str) -> str:
        if self._has("CorrelationName.As"):
            return f"AS {self._ident(alias)}"
        return self._ident(alias)

    def _join(self, join: ast.Join) -> str:
        if isinstance(join.right, ast.Join):
            raise UnrenderableNodeError(
                "join with a joined right operand has no grammar spelling"
            )
        left = self._table_ref(join.left)
        right = self._table_ref(join.right)
        if join.kind == "cross":
            self._require("CROSS JOIN", "CrossJoin")
            return f"{left} CROSS JOIN {right}"
        if join.kind == "natural":
            self._require("NATURAL JOIN", "NaturalJoin")
            return f"{left} NATURAL JOIN {right}"
        if join.kind == "union":
            self._require("UNION JOIN", "UnionJoin")
            return f"{left} UNION JOIN {right}"
        spec = self._join_spec(join)
        if spec is None:
            # inner join without ON/USING has no spelling; CROSS JOIN is
            # the lossless equivalent when available
            if join.kind == "inner" and self._has("CrossJoin"):
                self.rewrites.append(
                    "unconditional inner join rewritten to CROSS JOIN"
                )
                return f"{left} CROSS JOIN {right}"
            raise UnrenderableNodeError(
                f"{join.kind} join without a join specification",
                construct=f"{join.kind} join specification",
                features=("OnCondition", "UsingColumns"),
            )
        if join.kind == "inner":
            self._require("INNER JOIN", "InnerJoin")
            return f"{left} JOIN {right} {spec}"
        feature = {"left": "LeftJoin", "right": "RightJoin", "full": "FullJoin"}[
            join.kind
        ]
        self._require(f"{join.kind.upper()} JOIN", feature, "OuterJoin")
        return f"{left} {join.kind.upper()} JOIN {right} {spec}"

    def _join_spec(self, join: ast.Join) -> str | None:
        if join.on is not None:
            self._require("ON condition", "OnCondition")
            return f"ON {self._expr(join.on, 0)}"
        if join.using:
            self._require("USING columns", "UsingColumns")
            return "USING (" + ", ".join(self._ident(c) for c in join.using) + ")"
        return None

    def _values(self, values: ast.Values) -> str:
        rows = ", ".join(
            "(" + ", ".join(self._expr(e, 0) for e in row) + ")"
            for row in values.rows
        )
        return f"VALUES {rows}"

    # -- statements ---------------------------------------------------------

    def render_statement(self, stmt: ast.Statement) -> str:
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is None:
            raise UnrenderableNodeError(
                f"no renderer for statement {type(stmt).__name__}"
            )
        return method(stmt)

    def _stmt_QueryStatement(self, stmt: ast.QueryStatement) -> str:
        return self.render_query(stmt.query)

    def _stmt_GenericStatement(self, stmt: ast.GenericStatement) -> str:
        # reconstructed token text of a statement the engine doesn't model;
        # round-trips verbatim
        return stmt.text

    def _stmt_Insert(self, stmt: ast.Insert) -> str:
        self._require("INSERT", "Insert")
        parts = [f"INSERT INTO {self._chain(stmt.table)}"]
        if stmt.columns:
            self._require("INSERT column list", "InsertColumnList")
            parts.append(
                "(" + ", ".join(self._ident(c) for c in stmt.columns) + ")"
            )
        if stmt.overriding is not None:
            self._require("OVERRIDING clause", "OverridingClause")
            parts.append(f"OVERRIDING {stmt.overriding} VALUE")
        if stmt.source is None:
            self._require("DEFAULT VALUES", "InsertDefaultValues")
            parts.append("DEFAULT VALUES")
        elif isinstance(stmt.source, ast.Values):
            self._require("INSERT ... VALUES", "InsertFromConstructor")
            if len(stmt.source.rows) > 1:
                self._require("multi-row INSERT", "Insert.MultiRow")
            parts.append(self._values(stmt.source))
        else:
            self._require("INSERT from query", "InsertFromQuery")
            parts.append(self.render_query(stmt.source))
        return " ".join(parts)

    def _stmt_Update(self, stmt: ast.Update) -> str:
        self._require("UPDATE", "Update")
        assignments = ", ".join(
            f"{self._ident(column)} = {self._expr(value, 0)}"
            for column, value in stmt.assignments
        )
        text = f"UPDATE {self._chain(stmt.table)} SET {assignments}"
        if stmt.current_of is not None:
            self._require("WHERE CURRENT OF", "PositionedUpdate")
            return f"{text} WHERE CURRENT OF {self._ident(stmt.current_of)}"
        if stmt.where is not None:
            self._require("UPDATE ... WHERE", "UpdateWhere")
            text += f" WHERE {self._expr(stmt.where, 0)}"
        return text

    def _stmt_Delete(self, stmt: ast.Delete) -> str:
        self._require("DELETE", "Delete")
        text = f"DELETE FROM {self._chain(stmt.table)}"
        if stmt.current_of is not None:
            self._require("WHERE CURRENT OF", "PositionedDelete")
            return f"{text} WHERE CURRENT OF {self._ident(stmt.current_of)}"
        if stmt.where is not None:
            self._require("DELETE ... WHERE", "DeleteWhere")
            text += f" WHERE {self._expr(stmt.where, 0)}"
        return text

    def _stmt_Merge(self, stmt: ast.Merge) -> str:
        self._require("MERGE", "Merge")
        parts = [f"MERGE INTO {self._chain(stmt.target)}"]
        if stmt.target_alias is not None:
            parts.append(f"AS {self._ident(stmt.target_alias)}")
        parts.append(f"USING {self._table_ref(stmt.source)}")
        parts.append(f"ON {self._expr(stmt.condition, 0)}")
        if stmt.matched_assignments:
            self._require("WHEN MATCHED", "WhenMatched")
            assignments = ", ".join(
                f"{self._ident(c)} = {self._expr(v, 0)}"
                for c, v in stmt.matched_assignments
            )
            parts.append(f"WHEN MATCHED THEN UPDATE SET {assignments}")
        if stmt.not_matched_values is not None:
            self._require("WHEN NOT MATCHED", "WhenNotMatched")
            clause = "WHEN NOT MATCHED THEN INSERT"
            if stmt.not_matched_columns:
                clause += (
                    " ("
                    + ", ".join(self._ident(c) for c in stmt.not_matched_columns)
                    + ")"
                )
            parts.append(f"{clause} {self._values(stmt.not_matched_values)}")
        return " ".join(parts)

    def _stmt_CreateTable(self, stmt: ast.CreateTable) -> str:
        self._require("CREATE TABLE", "CreateTable")
        parts = ["CREATE"]
        if stmt.scope is not None:
            self._require("temporary table", "TemporaryTables")
            parts.append(stmt.scope.upper())
        parts.append(f"TABLE {self._chain(stmt.name)}")
        elements = [self._column_def(c) for c in stmt.columns]
        elements.extend(self._table_constraint(c) for c in stmt.constraints)
        if stmt.constraints:
            self._require("table constraints", "TableConstraints")
        if len(elements) > 1:
            self._require(
                "multiple table elements", "CreateTable.MultipleElements"
            )
        parts.append("(" + ", ".join(elements) + ")")
        if stmt.on_commit is not None:
            self._require("ON COMMIT", "OnCommitRows")
            parts.append(f"ON COMMIT {stmt.on_commit.upper()} ROWS")
        return " ".join(parts)

    def _column_def(self, column: ast.ColumnDef) -> str:
        parts = [self._ident(column.name), self._type_text(column.type, column.type.name)]
        if column.default is not None:
            self._require("DEFAULT clause", "ColumnDefault")
            parts.append(f"DEFAULT {self._expr(column.default, _PRIMARY)}")
        if column.identity is not None:
            self._require("identity column", "IdentityColumn")
            parts.append(
                f"GENERATED {column.identity.upper()} AS IDENTITY"
            )
        if column.not_null:
            self._require("NOT NULL", "NotNullConstraint")
            parts.append("NOT NULL")
        if column.primary_key:
            self._require("column PRIMARY KEY", "ColumnPrimaryKey")
            parts.append("PRIMARY KEY")
        if column.unique:
            self._require("column UNIQUE", "ColumnUnique")
            parts.append("UNIQUE")
        if column.references is not None:
            self._require("column REFERENCES", "ColumnReferences")
            parts.append(f"REFERENCES {self._chain(column.references)}")
        if column.check is not None:
            self._require("column CHECK", "ColumnCheck")
            parts.append(f"CHECK ({self._expr(column.check, 0)})")
        return " ".join(parts)

    def _table_constraint(self, constraint: ast.TableConstraint) -> str:
        if constraint.kind == "check":
            self._require("table CHECK", "TableCheck")
            return f"CHECK ({self._expr(constraint.check, 0)})"
        columns = "(" + ", ".join(self._ident(c) for c in constraint.columns) + ")"
        if constraint.kind == "primary key":
            self._require("table PRIMARY KEY", "TablePrimaryKey")
            return f"PRIMARY KEY {columns}"
        if constraint.kind == "unique":
            self._require("table UNIQUE", "TableUnique")
            return f"UNIQUE {columns}"
        self._require("FOREIGN KEY", "TableForeignKey")
        text = (
            f"FOREIGN KEY {columns} REFERENCES "
            f"{self._chain(constraint.references_table)}"
        )
        if constraint.references_columns:
            text += (
                " ("
                + ", ".join(self._ident(c) for c in constraint.references_columns)
                + ")"
            )
        if constraint.on_delete is not None:
            text += f" ON DELETE {constraint.on_delete.upper()}"
        if constraint.on_update is not None:
            text += f" ON UPDATE {constraint.on_update.upper()}"
        return text

    def _stmt_CreateView(self, stmt: ast.CreateView) -> str:
        self._require("CREATE VIEW", "CreateView")
        parts = ["CREATE"]
        if stmt.recursive:
            self._require("recursive view", "RecursiveView")
            parts.append("RECURSIVE")
        parts.append(f"VIEW {self._chain(stmt.name)}")
        if stmt.columns:
            self._require("view column list", "ViewColumnList")
            parts.append(
                "(" + ", ".join(self._ident(c) for c in stmt.columns) + ")"
            )
        parts.append(f"AS {self.render_query(stmt.query)}")
        if stmt.check_option:
            self._require("WITH CHECK OPTION", "CheckOption")
            parts.append("WITH CHECK OPTION")
        return " ".join(parts)

    _DROP_FEATURES = {
        "table": "DropTable",
        "view": "DropView",
        "schema": "DropSchema",
        "domain": "DropDomain",
        "sequence": "DropSequence",
    }

    def _stmt_DropStatement(self, stmt: ast.DropStatement) -> str:
        feature = self._DROP_FEATURES.get(stmt.kind)
        if feature is not None:
            self._require(f"DROP {stmt.kind.upper()}", feature)
        text = f"DROP {stmt.kind.upper()} {self._chain(stmt.name)}"
        if stmt.behavior is not None:
            text += f" {stmt.behavior.upper()}"
        return text

    def _stmt_Commit(self, stmt: ast.Commit) -> str:
        self._require("COMMIT", "Commit")
        return "COMMIT"

    def _stmt_Rollback(self, stmt: ast.Rollback) -> str:
        self._require("ROLLBACK", "Rollback")
        if stmt.savepoint is not None:
            self._require("ROLLBACK TO SAVEPOINT", "Savepoints")
            return f"ROLLBACK TO SAVEPOINT {self._ident(stmt.savepoint)}"
        return "ROLLBACK"

    def _stmt_Savepoint(self, stmt: ast.Savepoint) -> str:
        self._require("SAVEPOINT", "Savepoints")
        return f"SAVEPOINT {self._ident(stmt.name)}"

    def _stmt_ReleaseSavepoint(self, stmt: ast.ReleaseSavepoint) -> str:
        self._require("RELEASE SAVEPOINT", "ReleaseSavepoint")
        return f"RELEASE SAVEPOINT {self._ident(stmt.name)}"


def _tidy_type_text(text: str) -> str:
    """Normalize the space-joined token text of a data-type spec."""
    text = re.sub(r"\s*\(\s*", "(", text)
    text = re.sub(r"\s*\)", ")", text)
    return re.sub(r"\s*,\s*", ", ", text)
