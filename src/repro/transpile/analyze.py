"""Capability analysis: which feature units does an AST require?

The composition trace already records which feature unit contributed
every grammar rule (``ComposedProduct.rule_origins``); this module is
the AST-level counterpart.  :func:`analyze` walks a tree and emits one
:class:`Requirement` per construct, naming the feature unit(s) — any one
of which suffices — whose grammar productions can express it.

Translation uses the report in both directions:

* against the **target** dialect's selected units, :meth:`CapabilityReport.gaps`
  yields the constructs that cannot be expressed — each gap becomes a
  structured ``E0401`` diagnostic with an "enable feature 'X'" hint,
  so the translator fails *before* emitting malformed SQL;
* the requirement list itself documents which units a query exercises,
  which the transpile report surfaces for provenance.

Requirements use the most specific unit in the feature model: the
configuration checker resolves child→parent dependencies, so a selected
``LeftJoin`` implies ``OuterJoin`` and ``JoinedTable`` are selected too —
checking the leaf is sufficient.  Constructs every product can express
(plain function-call syntax, unary signs) produce no requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql import ast

__all__ = ["Requirement", "CapabilityReport", "analyze"]


@dataclass(frozen=True)
class Requirement:
    """One construct and the feature units (alternatives) that express it."""

    construct: str
    alternatives: tuple[str, ...]

    @property
    def primary(self) -> str:
        """The preferred unit to suggest enabling."""
        return self.alternatives[0]

    def satisfied_by(self, features: frozenset[str]) -> bool:
        return any(unit in features for unit in self.alternatives)


@dataclass(frozen=True)
class CapabilityReport:
    """All feature requirements of one AST, in first-occurrence order."""

    requirements: tuple[Requirement, ...]

    def gaps(self, features: frozenset[str]) -> tuple[Requirement, ...]:
        """Requirements the given selected-unit set cannot satisfy."""
        return tuple(
            r for r in self.requirements if not r.satisfied_by(features)
        )

    def units(self) -> frozenset[str]:
        """Every feature unit referenced by any requirement."""
        return frozenset(
            unit for r in self.requirements for unit in r.alternatives
        )

    def to_payload(self) -> list[dict]:
        """JSON-friendly shape for the transpile report."""
        return [
            {"construct": r.construct, "features": list(r.alternatives)}
            for r in self.requirements
        ]


def analyze(node, source_product=None) -> CapabilityReport:
    """Collect the feature requirements of ``node`` (any AST object).

    ``source_product`` (a :class:`~repro.composer.ComposedProduct`)
    sharpens :class:`~repro.sql.ast.GenericStatement` analysis: the
    statement's rule name is mapped through the product's composition
    trace to the unit that contributed the rule.
    """
    walker = _Walker(source_product)
    walker.visit(node)
    return CapabilityReport(tuple(walker.requirements))


_COMPARISON_UNITS = {
    "=": "Comparison.Equals",
    "<>": "Comparison.NotEquals",
    "<": "Comparison.Less",
    ">": "Comparison.Greater",
    "<=": "Comparison.LessOrEquals",
    ">=": "Comparison.GreaterOrEquals",
}

_LITERAL_UNITS = {
    "integer": ("ExactNumericLiteral",),
    "numeric": ("ApproximateNumericLiteral", "ExactNumericLiteral"),
    "string": ("CharacterStringLiteral",),
    "nstring": ("NationalStringLiteral",),
    "binary": ("BinaryStringLiteral",),
    "ustring": ("UnicodeStringLiteral",),
    "boolean": ("BooleanLiteral",),
    "date": ("DateLiteral",),
    "time": ("TimeLiteral",),
    "timestamp": ("TimestampLiteral",),
    "interval": ("IntervalLiteral",),
}

_FUNCTION_UNITS = {
    "EXTRACT": "ExtractFunction",
    "SUBSTRING": "SubstringFunction",
    "POSITION": "PositionFunction",
    "OVERLAY": "OverlayFunction",
    "TRIM": "TrimFunction",
    "COALESCE": "Coalesce",
    "NULLIF": "NullIf",
    "NEXT VALUE FOR": "NextValue",
    "GROUPING": "GroupingFunction",
    "CURRENT_DATE": "CurrentDate",
    "CURRENT_TIME": "CurrentTime",
    "CURRENT_TIMESTAMP": "CurrentTimestamp",
    "LOCALTIME": "LocalTime",
    "LOCALTIMESTAMP": "LocalTimestamp",
    "USER": "UserFn.User",
    "CURRENT_USER": "UserFn.CurrentUser",
    "SESSION_USER": "UserFn.SessionUser",
    "SYSTEM_USER": "UserFn.SystemUser",
    "CURRENT_ROLE": "UserFn.CurrentRole",
    "CURRENT_PATH": "UserFn.CurrentPath",
}

_TYPE_UNITS = {
    "boolean": "BooleanType",
    "interval": "IntervalType",
    "date": "DatetimeTypes",
    "time": "DatetimeTypes",
    "timestamp": "DatetimeTypes",
}

_DROP_UNITS = {
    "table": "DropTable",
    "view": "DropView",
    "schema": "DropSchema",
    "domain": "DropDomain",
    "sequence": "DropSequence",
}

_JOIN_UNITS = {
    "inner": "InnerJoin",
    "left": "LeftJoin",
    "right": "RightJoin",
    "full": "FullJoin",
    "cross": "CrossJoin",
    "natural": "NaturalJoin",
    "union": "UnionJoin",
}


class _Walker:
    def __init__(self, source_product=None) -> None:
        self.requirements: list[Requirement] = []
        self._seen: set[tuple[str, tuple[str, ...]]] = set()
        self._rule_origins: dict[str, str] = {}
        if source_product is not None:
            self._rule_origins = dict(source_product.rule_origins())

    def need(self, construct: str, *alternatives: str) -> None:
        key = (construct, alternatives)
        if key not in self._seen:
            self._seen.add(key)
            self.requirements.append(Requirement(construct, alternatives))

    # -- dispatch -----------------------------------------------------------

    def visit(self, node) -> None:
        if node is None:
            return
        method = getattr(self, f"_visit_{type(node).__name__}", None)
        if method is not None:
            method(node)

    def _visit_each(self, nodes) -> None:
        for node in nodes:
            self.visit(node)

    # -- scripts and statements ---------------------------------------------

    def _visit_Script(self, node: ast.Script) -> None:
        self._visit_each(node.statements)

    def _visit_QueryStatement(self, node: ast.QueryStatement) -> None:
        self.visit(node.query)

    def _visit_GenericStatement(self, node: ast.GenericStatement) -> None:
        origin = self._rule_origins.get(node.kind)
        if origin:
            self.need(f"{node.kind.replace('_', ' ')}", origin)

    def _visit_Insert(self, node: ast.Insert) -> None:
        self.need("INSERT statement", "Insert")
        if node.columns:
            self.need("INSERT column list", "InsertColumnList")
        if node.overriding is not None:
            self.need("OVERRIDING clause", "OverridingClause")
        if node.source is None:
            self.need("INSERT ... DEFAULT VALUES", "InsertDefaultValues")
        elif isinstance(node.source, ast.Values):
            self.need("INSERT ... VALUES", "InsertFromConstructor")
            if len(node.source.rows) > 1:
                self.need("multi-row INSERT", "Insert.MultiRow")
            for row in node.source.rows:
                self._visit_each(row)
        else:
            self.need("INSERT from query", "InsertFromQuery")
            self.visit(node.source)

    def _visit_Update(self, node: ast.Update) -> None:
        self.need("UPDATE statement", "Update")
        if len(node.assignments) > 1:
            self.need("multiple SET assignments", "Update.MultipleAssignments")
        for _, value in node.assignments:
            self.visit(value)
        if node.current_of is not None:
            self.need("UPDATE ... WHERE CURRENT OF", "PositionedUpdate")
        elif node.where is not None:
            self.need("UPDATE ... WHERE", "UpdateWhere")
            self.visit(node.where)

    def _visit_Delete(self, node: ast.Delete) -> None:
        self.need("DELETE statement", "Delete")
        if node.current_of is not None:
            self.need("DELETE ... WHERE CURRENT OF", "PositionedDelete")
        elif node.where is not None:
            self.need("DELETE ... WHERE", "DeleteWhere")
            self.visit(node.where)

    def _visit_Merge(self, node: ast.Merge) -> None:
        self.need("MERGE statement", "Merge")
        self._visit_table_ref(node.source)
        self.visit(node.condition)
        if node.matched_assignments:
            self.need("WHEN MATCHED clause", "WhenMatched")
            for _, value in node.matched_assignments:
                self.visit(value)
        if node.not_matched_values is not None:
            self.need("WHEN NOT MATCHED clause", "WhenNotMatched")
            for row in node.not_matched_values.rows:
                self._visit_each(row)

    def _visit_CreateTable(self, node: ast.CreateTable) -> None:
        self.need("CREATE TABLE statement", "CreateTable")
        if node.scope is not None:
            self.need("temporary table", "TemporaryTables")
        if node.on_commit is not None:
            self.need("ON COMMIT clause", "OnCommitRows")
        if len(node.columns) + len(node.constraints) > 1:
            self.need("multiple table elements", "CreateTable.MultipleElements")
        for column in node.columns:
            self._visit_column_def(column)
        if node.constraints:
            self.need("table constraints", "TableConstraints")
        for constraint in node.constraints:
            self._visit_table_constraint(constraint)

    def _visit_column_def(self, column: ast.ColumnDef) -> None:
        self._visit_type(column.type)
        if column.default is not None:
            self.need("column DEFAULT", "ColumnDefault")
            self.visit(column.default)
        if column.identity is not None:
            self.need("identity column", "IdentityColumn")
        if column.not_null:
            self.need("NOT NULL constraint", "NotNullConstraint")
        if column.primary_key:
            self.need("column PRIMARY KEY", "ColumnPrimaryKey")
        if column.unique:
            self.need("column UNIQUE", "ColumnUnique")
        if column.references is not None:
            self.need("column REFERENCES", "ColumnReferences")
        if column.check is not None:
            self.need("column CHECK", "ColumnCheck")
            self.visit(column.check)

    def _visit_table_constraint(self, constraint: ast.TableConstraint) -> None:
        if constraint.kind == "primary key":
            self.need("table PRIMARY KEY", "TablePrimaryKey")
        elif constraint.kind == "unique":
            self.need("table UNIQUE", "TableUnique")
        elif constraint.kind == "foreign key":
            self.need("FOREIGN KEY constraint", "TableForeignKey")
        elif constraint.kind == "check":
            self.need("table CHECK", "TableCheck")
            self.visit(constraint.check)

    def _visit_type(self, spec: ast.TypeSpec) -> None:
        unit = _TYPE_UNITS.get(spec.name)
        if unit is not None:
            self.need(f"{spec.name.upper()} type", unit)

    def _visit_CreateView(self, node: ast.CreateView) -> None:
        self.need("CREATE VIEW statement", "CreateView")
        if node.recursive:
            self.need("recursive view", "RecursiveView")
        if node.columns:
            self.need("view column list", "ViewColumnList")
        if node.check_option:
            self.need("WITH CHECK OPTION", "CheckOption")
        self.visit(node.query)

    def _visit_DropStatement(self, node: ast.DropStatement) -> None:
        unit = _DROP_UNITS.get(node.kind)
        if unit is not None:
            self.need(f"DROP {node.kind.upper()} statement", unit)

    def _visit_Commit(self, node: ast.Commit) -> None:
        self.need("COMMIT statement", "Commit")

    def _visit_Rollback(self, node: ast.Rollback) -> None:
        self.need("ROLLBACK statement", "Rollback")
        if node.savepoint is not None:
            self.need("ROLLBACK TO SAVEPOINT", "Savepoints")

    def _visit_Savepoint(self, node: ast.Savepoint) -> None:
        self.need("SAVEPOINT statement", "Savepoints")

    def _visit_ReleaseSavepoint(self, node: ast.ReleaseSavepoint) -> None:
        self.need("RELEASE SAVEPOINT statement", "ReleaseSavepoint")

    # -- queries ------------------------------------------------------------

    def _visit_Query(self, node: ast.Query) -> None:
        if node.ctes:
            self.need("WITH clause", "WithClause")
            if node.recursive:
                self.need("WITH RECURSIVE", "RecursiveWith")
            if len(node.ctes) > 1:
                self.need("multiple WITH elements", "With.MultipleElements")
            for cte in node.ctes:
                if cte.columns:
                    self.need("WITH column list", "WithColumnList")
                self.visit(cte.query)
        self._visit_body(node.body, top=True)
        if node.order_by:
            self.need("ORDER BY clause", "OrderBy")
            if len(node.order_by) > 1:
                self.need("multiple sort keys", "OrderBy.MultipleKeys")
            for spec in node.order_by:
                self._visit_sort_spec(spec)
        if node.limit is not None:
            if node.limit_style == "fetch":
                self.need("row limiting", "FetchFirst", "Limit")
            else:
                self.need("row limiting", "Limit", "FetchFirst")
        if node.offset is not None:
            self.need("OFFSET clause", "Offset")

    def _visit_sort_spec(self, spec: ast.SortSpec) -> None:
        self.visit(spec.expression)
        if spec.collation:
            self.need("COLLATE on a sort key", "CollateClause")
        if spec.descending:
            self.need("DESC ordering", "Descending")
        if spec.nulls_last is not None:
            self.need("NULLS FIRST/LAST", "NullOrdering")
            self.need(
                "NULLS LAST" if spec.nulls_last else "NULLS FIRST",
                "NullsLast" if spec.nulls_last else "NullsFirst",
            )

    def _visit_body(self, body, top: bool) -> None:
        if isinstance(body, ast.SetOperation):
            self._visit_set_operation(body, top)
        elif isinstance(body, ast.Select):
            self._visit_Select(body)
        elif isinstance(body, ast.Values):
            self.need("VALUES as a query", "TableValueConstructor")
            if len(body.rows) > 1:
                self.need("multi-row VALUES", "RowValues.MultipleElements")
            for row in body.rows:
                self._visit_each(row)
        elif isinstance(body, ast.ExplicitTable):
            self.need("TABLE statement", "ExplicitTable")

    def _visit_set_operation(self, op: ast.SetOperation, top: bool) -> None:
        if op.kind == "union":
            self.need("UNION", "Union")
        elif op.kind == "except":
            self.need("EXCEPT", "Except")
        else:
            self.need("INTERSECT", "Intersect")
        if not top:
            self.need("nested set operation", "NestedQuery")
        if op.quantifier == "ALL":
            self.need("set-operation ALL", "SetOpQuantifier.All")
        elif op.quantifier == "DISTINCT":
            self.need("set-operation DISTINCT", "SetOpQuantifier.Distinct")
        if op.corresponding:
            self.need("CORRESPONDING", "Corresponding")
            if op.corresponding_by:
                self.need("CORRESPONDING BY", "CorrespondingBy")
        # a set-op operand nested under another set-op needs parentheses
        left_top = top and op.kind in ("union", "except")
        self._visit_body(op.left, top=left_top)
        right_nested = isinstance(op.right, ast.SetOperation)
        self._visit_body(op.right, top=not right_nested and top)

    def _visit_Select(self, node: ast.Select) -> None:
        if node.quantifier == "DISTINCT":
            self.need("SELECT DISTINCT", "SetQuantifier.DISTINCT")
        elif node.quantifier == "ALL":
            self.need("SELECT ALL", "SetQuantifier.ALL")
        if len(node.items) > 1:
            self.need("multiple select items", "SelectSublist.Multiple")
        for item in node.items:
            if isinstance(item, ast.Star):
                self.visit(item)
            else:
                if item.alias is not None:
                    self.need("column alias", "DerivedColumn.As")
                self.visit(item.expression)
        if node.into:
            self.need("SELECT INTO", "SelectInto")
        if len(node.from_tables) > 1:
            self.need("multiple FROM tables", "MultipleTables")
        for ref in node.from_tables:
            self._visit_table_ref(ref)
        if node.where is not None:
            self.need("WHERE clause", "Where")
            self.visit(node.where)
        self._visit_grouping(node)
        if node.having is not None:
            self.need("HAVING clause", "Having")
            self.visit(node.having)
        if node.windows:
            self.need("WINDOW clause", "Window")
            for window in node.windows:
                self._visit_window_spec(window.spec)
        if node.sample_period is not None:
            self.need("SAMPLE PERIOD clause", "SamplePeriod")
        if node.epoch_duration is not None:
            self.need("EPOCH DURATION clause", "EpochDuration")
        if node.output_action is not None:
            self.need("OUTPUT ACTION clause", "OutputAction")
        if node.lifetime is not None:
            self.need("LIFETIME clause", "QueryLifetime")

    def _visit_grouping(self, node: ast.Select) -> None:
        elements = node.grouping or node.group_by
        if not elements:
            return
        self.need("GROUP BY clause", "GroupBy")
        if len(elements) > 1:
            self.need("multiple grouping keys", "GroupBy.MultipleKeys")
        for element in node.grouping:
            self._visit_grouping_element(element)
        if not node.grouping:
            for expr in node.group_by:
                self.visit(expr)
            if node.grouping_kind == "rollup":
                self.need("ROLLUP grouping", "Rollup")
            elif node.grouping_kind == "cube":
                self.need("CUBE grouping", "Cube")
            elif node.grouping_kind == "grouping sets":
                self.need("GROUPING SETS", "GroupingSets")

    def _visit_grouping_element(self, element) -> None:
        if not isinstance(element, ast.GroupingElement):
            self.visit(element)
            return
        if element.kind == "rollup":
            self.need("ROLLUP grouping", "Rollup")
        elif element.kind == "cube":
            self.need("CUBE grouping", "Cube")
        elif element.kind == "grouping sets":
            self.need("GROUPING SETS", "GroupingSets")
        else:
            self.need("empty grouping set", "EmptyGroupingSet")
        for nested in element.elements:
            self._visit_grouping_element(nested)

    def _visit_table_ref(self, ref) -> None:
        if isinstance(ref, ast.NamedTable):
            if len(ref.parts) > 1:
                self.need("qualified table name", "QualifiedNames")
            if ref.alias is not None:
                self.need("table alias", "CorrelationName")
        elif isinstance(ref, ast.DerivedTable):
            self.need("derived table", "DerivedTable")
            if ref.lateral:
                self.need("LATERAL derived table", "LateralDerivedTable")
            self.visit(ref.query)
        elif isinstance(ref, ast.Join):
            self._visit_join(ref)

    def _visit_join(self, join: ast.Join) -> None:
        unit = _JOIN_UNITS.get(join.kind)
        if unit is not None:
            self.need(f"{join.kind.upper()} JOIN", unit)
        self._visit_table_ref(join.left)
        self._visit_table_ref(join.right)
        if join.on is not None:
            self.need("join ON condition", "OnCondition")
            self.visit(join.on)
        elif join.using:
            self.need("join USING columns", "UsingColumns")
        elif join.kind == "inner":
            # renderable only by degrading to CROSS JOIN
            self.need(
                "unconditional inner join", "CrossJoin", "OnCondition"
            )

    def _visit_window_spec(self, spec: ast.WindowSpec) -> None:
        if spec.existing:
            self.need("named window reference", "ExistingWindowName")
        if spec.partition_by:
            self.need("PARTITION BY clause", "PartitionClause")
            self._visit_each(spec.partition_by)
        if spec.order_by:
            self.need("window ORDER BY", "WindowOrderClause")
            for sort in spec.order_by:
                self._visit_sort_spec(sort)
        if spec.frame:
            self.need("window frame clause", "FrameClause")

    # -- expressions --------------------------------------------------------

    def _visit_Literal(self, node: ast.Literal) -> None:
        units = _LITERAL_UNITS.get(node.type_name)
        if units is not None:
            self.need(f"{node.type_name} literal", *units)

    def _visit_ColumnRef(self, node: ast.ColumnRef) -> None:
        if len(node.parts) > 1:
            self.need("qualified column reference", "QualifiedNames")

    def _visit_Star(self, node: ast.Star) -> None:
        if node.table is not None:
            self.need("qualified asterisk", "QualifiedAsterisk")
        else:
            self.need("select-list asterisk", "Asterisk")

    def _visit_BinaryOp(self, node: ast.BinaryOp) -> None:
        op = node.op
        if op in _COMPARISON_UNITS:
            self.need(f"{op} comparison", _COMPARISON_UNITS[op])
        elif op == "OVERLAPS":
            self.need("OVERLAPS predicate", "OverlapsPredicate")
        elif op == "||":
            self.need("string concatenation", "Concatenation")
        elif op in ("+", "-"):
            self.need("additive arithmetic", "Addition")
        elif op in ("*", "/"):
            self.need("multiplicative arithmetic", "Multiplication")
        elif op == "AND":
            self.need("AND operator", "AndOperator")
        elif op == "OR":
            self.need("OR operator", "OrOperator")
        self.visit(node.left)
        self.visit(node.right)

    def _visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if node.op == "NOT":
            self.need("NOT operator", "NotOperator")
        self.visit(node.operand)

    def _visit_FunctionCall(self, node: ast.FunctionCall) -> None:
        unit = _FUNCTION_UNITS.get(node.name)
        if unit is not None:
            self.need(f"{node.name} function", unit)
        for arg in node.args:
            if isinstance(arg, ast.Literal) and arg.type_name in (
                "field",
                "trim_spec",
            ):
                continue
            self.visit(arg)

    def _visit_AggregateCall(self, node: ast.AggregateCall) -> None:
        self.need("aggregate function", "AggregateFunctions")
        if node.argument is None:
            self.need("COUNT(*)", "CountStar")
        else:
            if node.quantifier is not None:
                self.need("aggregate quantifier", "AggregateQuantifier")
            self.visit(node.argument)
        if node.filter_condition is not None:
            self.need("FILTER clause", "FilterClause")
            self.visit(node.filter_condition)

    def _visit_WindowCall(self, node: ast.WindowCall) -> None:
        self.need("window function", "WindowFunctions")
        if isinstance(node.function, ast.AggregateCall):
            self.need("aggregate OVER window", "AggregateOver")
        self.visit(node.function)
        if isinstance(node.window, ast.WindowSpec):
            self._visit_window_spec(node.window)
        # OVER <window name> is part of the base WindowFunctions grammar
        # (window_name_or_spec); only an existing name *inside* an inline
        # spec needs ExistingWindowName — handled by _visit_window_spec.

    def _visit_CaseExpr(self, node: ast.CaseExpr) -> None:
        if node.operand is not None:
            self.need("simple CASE", "SimpleCase")
            self.visit(node.operand)
        else:
            self.need("searched CASE", "SearchedCase")
        for condition, result in node.whens:
            self.visit(condition)
            self.visit(result)
        self.visit(node.else_result)

    def _visit_Cast(self, node: ast.Cast) -> None:
        self.need("CAST specification", "CastSpecification")
        self.visit(node.operand)
        if node.type_spec is not None:
            self._visit_type(node.type_spec)

    def _visit_IsNull(self, node: ast.IsNull) -> None:
        self.need("IS NULL predicate", "NullPredicate")
        self.visit(node.operand)

    def _visit_Between(self, node: ast.Between) -> None:
        self.need("BETWEEN predicate", "BetweenPredicate")
        self.visit(node.operand)
        self.visit(node.low)
        self.visit(node.high)

    def _visit_InList(self, node: ast.InList) -> None:
        self.need("IN value list", "InValueList")
        self.visit(node.operand)
        self._visit_each(node.items)

    def _visit_InSubquery(self, node: ast.InSubquery) -> None:
        self.need("IN subquery", "InSubquery")
        self.visit(node.operand)
        self.visit(node.query)

    def _visit_Like(self, node: ast.Like) -> None:
        if node.similar:
            self.need("SIMILAR TO predicate", "SimilarPredicate")
        else:
            self.need("LIKE predicate", "LikePredicate")
            if node.escape is not None:
                self.need("LIKE ... ESCAPE", "LikeEscape")
        self.visit(node.operand)
        self.visit(node.pattern)
        self.visit(node.escape)

    def _visit_Exists(self, node: ast.Exists) -> None:
        self.need("EXISTS predicate", "ExistsPredicate")
        self.visit(node.query)

    def _visit_UniqueSubquery(self, node: ast.UniqueSubquery) -> None:
        self.need("UNIQUE predicate", "UniquePredicate")
        self.visit(node.query)

    def _visit_Quantified(self, node: ast.Quantified) -> None:
        self.need("quantified comparison", "QuantifiedComparison")
        if node.quantifier == "ALL":
            self.need("ALL quantifier", "AllQuantifier")
        else:
            self.need(
                f"{node.quantifier} quantifier",
                "SomeQuantifier" if node.quantifier == "SOME" else "AnyQuantifier",
                "AnyQuantifier" if node.quantifier == "SOME" else "SomeQuantifier",
            )
        self.visit(node.operand)
        self.visit(node.query)

    def _visit_ScalarSubquery(self, node: ast.ScalarSubquery) -> None:
        self.need("scalar subquery", "ScalarSubquery")
        self.visit(node.query)

    def _visit_IsDistinctFrom(self, node: ast.IsDistinctFrom) -> None:
        self.need("IS DISTINCT FROM predicate", "DistinctPredicate")
        self.visit(node.left)
        self.visit(node.right)

    def _visit_BooleanIs(self, node: ast.BooleanIs) -> None:
        self.need("boolean test", "BooleanTest")
        truth_unit = {
            True: "Truth.True", False: "Truth.False", None: "Truth.Unknown"
        }[node.truth]
        label = {True: "TRUE", False: "FALSE", None: "UNKNOWN"}[node.truth]
        self.need(f"IS {label} test", truth_unit)
        self.visit(node.operand)

    def _visit_Match(self, node: ast.Match) -> None:
        self.need("MATCH predicate", "MatchPredicate")
        if node.unique:
            self.need("MATCH UNIQUE", "Match.Unique")
        if node.option is not None:
            self.need(
                f"MATCH {node.option}", f"Match.{node.option.capitalize()}"
            )
        self.visit(node.operand)
        self.visit(node.query)

    def _visit_AtTimeZone(self, node: ast.AtTimeZone) -> None:
        self.need("AT TIME ZONE operator", "AtTimeZone")
        self.visit(node.operand)
        self.visit(node.zone)
