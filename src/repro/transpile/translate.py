"""Cross-dialect translation: parse with A's parser, re-render for B.

The paper's product line composes a *parser* per dialect; with the
feature-aware renderer the composition metadata works in the other
direction too: a query written for one dialect can be re-emitted in
another dialect's concrete syntax, or rejected with a structured
explanation of exactly which feature units the target is missing.

The pipeline of :func:`translate`:

1. **parse** the input with the source dialect's cached parser (through
   the process-wide parser registry — no recomposition per call);
2. **build** the AST (:func:`repro.sql.build_ast`);
3. **analyze** feature requirements (:func:`repro.transpile.analyze`)
   and diff them against the target's resolved selection — any gap
   raises :class:`TranspileError` (``E0401``) with one "enable feature
   'X'" hint per missing unit, *before* any SQL is emitted;
4. **render** with the target's :class:`~repro.transpile.render.RenderOptions`,
   applying lossless rewrites (``FETCH FIRST`` ↔ ``LIMIT``,
   ``SOME`` ↔ ``ANY``) where spellings differ;
5. **verify** by re-parsing the output with the target's parser — the
   "never emit malformed SQL" guarantee is checked, not assumed.

The result carries a versioned JSON report (kind
``repro-transpile-report``, v1) through the shared report envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..conformance.report import report_envelope
from ..diagnostics.model import UNTRANSLATABLE
from ..errors import ReproError
from .analyze import CapabilityReport, Requirement, analyze
from .render import RenderOptions, SqlRenderer

__all__ = ["TranspileError", "TranslationResult", "translate"]

#: Report envelope identity for transpile reports.
REPORT_KIND = "repro-transpile-report"
REPORT_VERSION = 1


class TranspileError(ReproError):
    """The query uses constructs the target dialect cannot express."""

    code = UNTRANSLATABLE

    def __init__(
        self,
        message: str,
        *,
        gaps: tuple[Requirement, ...] = (),
        source_dialect: str | None = None,
        target_dialect: str | None = None,
    ) -> None:
        super().__init__(message)
        self.gaps = tuple(gaps)
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        where = f" in dialect '{target_dialect}'" if target_dialect else ""
        self.hints = tuple(
            f"enable feature '{gap.primary}'{where} to express {gap.construct}"
            for gap in self.gaps
        )


@dataclass(frozen=True)
class TranslationResult:
    """A verified translation plus everything needed to explain it."""

    sql: str
    source_dialect: str
    target_dialect: str
    #: Human-readable notes about lossless degradations the renderer
    #: applied (e.g. "FETCH FIRST ... ROWS ONLY degraded to LIMIT").
    rewrites: tuple[str, ...]
    #: Feature requirements of the input query (capability analysis).
    capabilities: CapabilityReport
    #: The original input text.
    source_sql: str

    def report(self) -> dict:
        """Versioned JSON payload (kind ``repro-transpile-report``, v1)."""
        return report_envelope(
            REPORT_KIND,
            REPORT_VERSION,
            {
                "source": {"dialect": self.source_dialect, "sql": self.source_sql},
                "target": {"dialect": self.target_dialect, "sql": self.sql},
                "rewrites": list(self.rewrites),
                "requirements": self.capabilities.to_payload(),
                "verified": True,
            },
        )


@lru_cache(maxsize=None)
def _dialect_state(name: str):
    """(product, registry entry) for a preset dialect, resolved once.

    ``build_dialect`` re-resolves the feature configuration and the
    registry re-fingerprints the full selection on every call — both are
    far more expensive than a warm parse, so translation caches the
    resolved pair per preset name (presets are a small, fixed set).
    Parsers come from the entry's per-thread cache
    (:meth:`~repro.service.registry.RegistryEntry.thread_parser`).
    """
    from ..sql import build_dialect, sql_parser_registry

    product = build_dialect(name)
    entry = sql_parser_registry().get(product.configuration.selected)
    return product, entry


def translate(sql: str, source_dialect: str, target_dialect: str) -> TranslationResult:
    """Translate ``sql`` from one preset dialect's syntax to another's.

    Raises:
        ScanError / ParseError: the input is not valid in the *source*
            dialect (standard parse diagnostics, feature hints included).
        TranspileError: the query parses but uses features the *target*
            dialect lacks (E0401; one hint per missing unit).
        UnrenderableNodeError: an AST node has no spelling under the
            target's features (E0402) — a capability the analyzer does
            not model; still structured, never malformed output.
    """
    from ..sql import build_ast

    source, source_entry = _dialect_state(source_dialect)
    target, target_entry = _dialect_state(target_dialect)

    tree = source_entry.thread_parser().parse(sql)
    script = build_ast(tree)

    capabilities = analyze(script, source_product=source)
    gaps = capabilities.gaps(frozenset(target.configuration.selected))
    if gaps:
        missing = ", ".join(sorted({gap.primary for gap in gaps}))
        raise TranspileError(
            f"query is not expressible in dialect '{target_dialect}': "
            f"missing feature units {missing}",
            gaps=gaps,
            source_dialect=source_dialect,
            target_dialect=target_dialect,
        )

    renderer = SqlRenderer(RenderOptions.for_product(target))
    rendered = renderer.render(script)

    # never-malformed guarantee: the target's own parser must accept the
    # output; a rejection here is a renderer/analyzer inconsistency and
    # surfaces as a structured error, not as bad SQL handed to the caller
    try:
        target_entry.thread_parser().parse(rendered)
    except ReproError as exc:
        raise TranspileError(
            f"translation to dialect '{target_dialect}' produced SQL its own "
            f"parser rejects ({exc}); this is a transpiler defect, not a "
            f"problem with the input",
            source_dialect=source_dialect,
            target_dialect=target_dialect,
        ) from exc

    return TranslationResult(
        sql=rendered,
        source_dialect=source_dialect,
        target_dialect=target_dialect,
        rewrites=tuple(renderer.rewrites),
        capabilities=capabilities,
        source_sql=sql,
    )
