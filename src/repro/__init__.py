"""repro — a reproduction of "Generating Highly Customizable SQL Parsers".

Sunkle, Kuhlemann, Siegmund, Rosenmüller, Saake (EDBT 2008 SETMDM
workshop): SQL:2003 decomposed into feature diagrams with per-feature
sub-grammars, composed on demand into tailor-made SQL parsers.

Quick start::

    from repro import configure_sql, build_dialect, Database

    # compose a parser from individual features
    product = configure_sql(["QuerySpecification", "SelectSublist", "Where",
                             "ComparisonPredicate", "Literals"])
    tree = product.parser().parse("SELECT a FROM t WHERE b = 1")

    # or use a preset dialect, with an engine behind it
    db = Database("tinysql")

Subpackages:

* :mod:`repro.lexer` — composable token sets and scanning,
* :mod:`repro.grammar` — EBNF grammar algebra and DSL,
* :mod:`repro.parsing` — LL(k) analysis, parsing, parser codegen,
* :mod:`repro.features` — feature models and configurations,
* :mod:`repro.core` — the composition engine and product lines,
* :mod:`repro.sql` — the SQL:2003 decomposition and dialects,
* :mod:`repro.engine` — a tailored in-memory SQL engine,
* :mod:`repro.workloads` — benchmark query generators.
"""

from .core import (
    BuiltParser,
    ComposedProduct,
    FeatureUnit,
    GrammarComposer,
    GrammarProductLine,
    ParserBuilder,
    unit,
)
from .engine import Database, Result
from .errors import ReproError
from .features import Configuration, FeatureModel, read_feature_model
from .grammar import Grammar, read_grammar, write_grammar
from .parsing import Parser, generate_parser_source, load_generated_parser
from .service import (
    Fingerprint,
    ParseRequest,
    ParseService,
    ParseServiceResult,
    ParserRegistry,
    product_fingerprint,
)
from .sql import (
    build_dialect,
    build_sql_product_line,
    configure_sql,
    dialect_features,
    dialect_names,
    sql_parser_registry,
    sql_registry,
)
from .workloads import generate_workload

__version__ = "1.0.0"

__all__ = [
    "BuiltParser",
    "ComposedProduct",
    "Configuration",
    "Database",
    "FeatureModel",
    "FeatureUnit",
    "Fingerprint",
    "Grammar",
    "GrammarComposer",
    "GrammarProductLine",
    "ParseRequest",
    "ParseService",
    "ParseServiceResult",
    "Parser",
    "ParserBuilder",
    "ParserRegistry",
    "ReproError",
    "Result",
    "build_dialect",
    "build_sql_product_line",
    "configure_sql",
    "dialect_features",
    "dialect_names",
    "generate_parser_source",
    "generate_workload",
    "load_generated_parser",
    "product_fingerprint",
    "read_feature_model",
    "read_grammar",
    "sql_parser_registry",
    "sql_registry",
    "unit",
    "write_grammar",
]
