"""Parse-program IR: one compiled semantics source for every backend.

The paper's pipeline hands each composed LL(k) grammar to a parser
generator so the product accepts exactly the selected feature set.  This
module is the reproduction's equivalent of that generated artifact: a
:func:`compile_program` pass lowers a validated
:class:`~repro.grammar.grammar.Grammar` plus its
:class:`~repro.parsing.first_follow.GrammarAnalysis` into a flat,
immutable :class:`ParseProgram` — tuple-encoded instructions with
interned token/rule ids, FIRST-set dispatch tables precomputed for every
choice point, per-rule FOLLOW/sync sets for panic-mode recovery, and an
embedded fingerprint for cache validation.

Every consumer of "what does this product accept?" reads the program
instead of re-deriving structure from the grammar:

* the interpreting :class:`~repro.parsing.parser.Parser` is a driver
  over the instruction form (flat opcode dispatch, no ``Element``
  pattern-matching on the hot path);
* :class:`~repro.parsing.codegen.ParserCodeGenerator` pretty-prints the
  *same* program into standalone source, so generated parsers are
  correct by construction rather than by parallel maintenance;
* the diagnostics machinery takes sync/expected sets straight from the
  program;
* the :mod:`repro.service` disk cache serializes programs as a second
  artifact kind (``<digest>.ir.json``) next to generated source.

Instruction set (opcode, operands...):

``MATCH tok``
    Consume one terminal or fail with the expected set.
``CALL rule``
    Push a new tree node and run the callee's block.
``SEQ (i1, i2, ...)``
    Run instructions in order.
``CHOICE dispatch``
    Ordered alternatives behind a FIRST-set dispatch table: one dict
    lookup yields the candidate blocks for the current lookahead
    (token-consuming candidates first, epsilon-deriving fallbacks last).
``OPT inner``
    Guarded optional: attempted only when the lookahead is in the
    inner block's FIRST set; a failed attempt is rolled back.
``LOOP inner`` / ``SEPLOOP inner sep``
    (Separated) repetition driven by FIRST-set continuation guards,
    with min-count enforcement and trailing-separator backoff.
"""

from __future__ import annotations

import json

from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar
from ..grammar.validate import validate
from ..lexer.token import EOF
from .first_follow import GrammarAnalysis

#: Serialization format version; bumped on incompatible layout changes so
#: stale on-disk IR artifacts from older builds never load.
IR_VERSION = 1

# -- opcodes -----------------------------------------------------------------

OP_MATCH = 0
OP_CALL = 1
OP_SEQ = 2
OP_CHOICE = 3
OP_OPT = 4
OP_LOOP = 5
OP_SEPLOOP = 6

OP_NAMES = ("MATCH", "CALL", "SEQ", "CHOICE", "OPT", "LOOP", "SEPLOOP")

#: Sync terminals the recovery loop may *consume* (they can never start a
#: new top-level construct, so skipping past them is always safe).
CONSUMABLE_SYNC = ("SEMICOLON", "RPAREN")


class ParseProgram:
    """The compiled, immutable form of one composed grammar.

    Attributes:
        grammar_name: Name of the source grammar (diagnostics only).
        fingerprint: Cache-key digest of the product this program was
            compiled from; ``None`` for ad-hoc grammars.
        token_names / token_ids: Interned terminal names (EOF included).
        rule_names / rule_ids: Interned nonterminal names; ``code[rid]``
            is rule ``rule_names[rid]``'s body instruction.
        start: Rule id of the start rule, or ``None``.
        code: One instruction tree per rule, indexed by rule id.
        follow: Per-rule FOLLOW sets (terminal names).
        sync: Per-rule panic-mode sync sets — FOLLOW plus the grammar's
            consumable statement boundaries plus EOF.
        consumable: The :data:`CONSUMABLE_SYNC` terminals present in this
            grammar's token set.
    """

    __slots__ = (
        "grammar_name",
        "fingerprint",
        "token_names",
        "token_ids",
        "rule_names",
        "rule_ids",
        "start",
        "code",
        "follow",
        "sync",
        "consumable",
    )

    def __init__(
        self,
        grammar_name: str,
        token_names: tuple[str, ...],
        rule_names: tuple[str, ...],
        start: int | None,
        code: tuple,
        follow: tuple,
        sync: tuple,
        consumable: tuple[str, ...],
        fingerprint: str | None = None,
    ) -> None:
        self.grammar_name = grammar_name
        self.fingerprint = fingerprint
        self.token_names = token_names
        self.token_ids = {name: i for i, name in enumerate(token_names)}
        self.rule_names = rule_names
        self.rule_ids = {name: i for i, name in enumerate(rule_names)}
        self.start = start
        self.code = code
        self.follow = follow
        self.sync = sync
        self.consumable = consumable

    # -- queries -----------------------------------------------------------

    def rule_id(self, name: str) -> int | None:
        return self.rule_ids.get(name)

    def start_name(self) -> str | None:
        return None if self.start is None else self.rule_names[self.start]

    def sync_for(self, rule_id: int) -> frozenset[str]:
        """Panic-mode synchronization terminals for one rule."""
        return self.sync[rule_id]

    def expected_at_start(self, rule_id: int) -> frozenset[str]:
        """Terminals that can begin the rule (the instruction's own guard)."""
        return _instr_first(self.code[rule_id])

    def size(self) -> dict[str, int]:
        """Instruction-count metrics (the IR's analogue of grammar.size())."""
        instructions = sum(_count_instrs(body) for body in self.code)
        dispatch = sum(_count_dispatch(body) for body in self.code)
        return {
            "rules": len(self.rule_names),
            "tokens": len(self.token_names),
            "instructions": instructions,
            "dispatch_entries": dispatch,
        }

    def __repr__(self) -> str:
        return (
            f"<ParseProgram {self.grammar_name!r}: {len(self.rule_names)} rules, "
            f"{len(self.token_names)} tokens, start={self.start_name()!r}>"
        )

    # -- listing -----------------------------------------------------------

    def listing(self) -> str:
        """Readable dump of the whole program (the ``repro ir`` command)."""
        lines = [
            f"parse program for grammar {self.grammar_name!r}",
            f"  fingerprint: {self.fingerprint or '<none>'}",
            f"  start rule:  {self.start_name() or '<none>'}",
            f"  interned:    {len(self.rule_names)} rules, "
            f"{len(self.token_names)} tokens",
        ]
        size = self.size()
        lines.append(
            f"  size:        {size['instructions']} instructions, "
            f"{size['dispatch_entries']} dispatch entries"
        )
        for rid, name in enumerate(self.rule_names):
            lines.append("")
            lines.append(f"rule #{rid} {name}:")
            lines.append(f"  FOLLOW {_fmt_set(self.follow[rid])}")
            lines.append(f"  SYNC   {_fmt_set(self.sync[rid])}")
            _list_instr(self.code[rid], lines, 1)
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize for the on-disk artifact cache (stable, versioned)."""
        payload = {
            "kind": "repro-parse-program",
            "version": IR_VERSION,
            "grammar": self.grammar_name,
            "fingerprint": self.fingerprint,
            "tokens": list(self.token_names),
            "rules": list(self.rule_names),
            "start": self.start,
            "code": [self._encode(body) for body in self.code],
            "follow": [self._encode_set(s) for s in self.follow],
            "sync": [self._encode_set(s) for s in self.sync],
            "consumable": list(self.consumable),
        }
        return json.dumps(payload, separators=(",", ":"))

    def _encode_set(self, terms: frozenset[str]) -> list[int]:
        ids = self.token_ids
        return sorted(ids[t] for t in terms)

    def _encode(self, instr) -> list:
        op = instr[0]
        if op == OP_MATCH:
            return [op, self.token_ids[instr[1]], self._encode_set(instr[2])]
        if op == OP_CALL:
            return [op, instr[1]]
        if op == OP_SEQ:
            return [op, [self._encode(i) for i in instr[1]]]
        if op == OP_CHOICE:
            _dispatch, _default, _expected, blocks, firsts, nullables = instr[1:]
            return [
                op,
                [self._encode(b) for b in blocks],
                [self._encode_set(f) for f in firsts],
                [int(n) for n in nullables],
            ]
        if op == OP_OPT:
            return [op, self._encode(instr[1]), self._encode_set(instr[2])]
        if op == OP_LOOP:
            return [op, self._encode(instr[1]), self._encode_set(instr[2]), instr[3]]
        # OP_SEPLOOP
        return [
            op,
            self._encode(instr[1]),
            self._encode(instr[2]),
            self._encode_set(instr[3]),
            self._encode_set(instr[4]),
            instr[5],
        ]

    @classmethod
    def from_json(cls, text: str) -> "ParseProgram":
        """Deserialize a program; raises ``ValueError`` on a bad artifact."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"not a parse-program artifact: {error}") from None
        if not isinstance(payload, dict) or payload.get("kind") != "repro-parse-program":
            raise ValueError("not a parse-program artifact")
        if payload.get("version") != IR_VERSION:
            raise ValueError(
                f"parse-program version {payload.get('version')!r} != {IR_VERSION}"
            )
        tokens = tuple(payload["tokens"])

        def decode_set(ids: list[int]) -> frozenset[str]:
            return frozenset(tokens[i] for i in ids)

        def decode(enc: list):
            op = enc[0]
            if op == OP_MATCH:
                return (op, tokens[enc[1]], decode_set(enc[2]))
            if op == OP_CALL:
                return (op, enc[1])
            if op == OP_SEQ:
                return (op, tuple(decode(i) for i in enc[1]))
            if op == OP_CHOICE:
                blocks = tuple(decode(b) for b in enc[1])
                firsts = tuple(decode_set(f) for f in enc[2])
                nullables = tuple(bool(n) for n in enc[3])
                return _make_choice(blocks, firsts, nullables)
            if op == OP_OPT:
                return (op, decode(enc[1]), decode_set(enc[2]))
            if op == OP_LOOP:
                return (op, decode(enc[1]), decode_set(enc[2]), enc[3])
            if op == OP_SEPLOOP:
                return (
                    op,
                    decode(enc[1]),
                    decode(enc[2]),
                    decode_set(enc[3]),
                    decode_set(enc[4]),
                    enc[5],
                )
            raise ValueError(f"unknown opcode {op!r} in parse-program artifact")

        try:
            return cls(
                grammar_name=payload["grammar"],
                token_names=tokens,
                rule_names=tuple(payload["rules"]),
                start=payload["start"],
                code=tuple(decode(body) for body in payload["code"]),
                follow=tuple(decode_set(s) for s in payload["follow"]),
                sync=tuple(decode_set(s) for s in payload["sync"]),
                consumable=tuple(payload["consumable"]),
                fingerprint=payload.get("fingerprint"),
            )
        except (KeyError, IndexError, TypeError) as error:
            raise ValueError(
                f"malformed parse-program artifact: {error!r}"
            ) from None


def program_fingerprint(text: str) -> str | None:
    """Extract the embedded fingerprint from a serialized program.

    The disk cache uses this to validate an ``.ir.json`` artifact without
    fully decoding it; any malformed artifact reads as ``None``.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict) or payload.get("kind") != "repro-parse-program":
        return None
    if payload.get("version") != IR_VERSION:
        return None
    value = payload.get("fingerprint")
    return value if isinstance(value, str) else None


# -- compilation --------------------------------------------------------------


def _make_choice(
    blocks: tuple,
    firsts: tuple,
    nullables: tuple,
):
    """Assemble a CHOICE instruction, precomputing its dispatch table.

    The dispatch table maps each possible lookahead terminal to the
    ordered candidate blocks the interpreter would otherwise select at
    parse time: token-consuming alternatives (declaration order) first,
    then epsilon-deriving fallbacks.  Lookaheads outside every FIRST set
    fall back to the epsilon-only default.
    """
    union: set[str] = set()
    for f in firsts:
        union |= f
    default = tuple(
        blocks[i] for i in range(len(blocks)) if nullables[i]
    )
    dispatch: dict[str, tuple] = {}
    for terminal in union:
        viable = tuple(
            blocks[i] for i in range(len(blocks)) if terminal in firsts[i]
        )
        fallbacks = tuple(
            blocks[i]
            for i in range(len(blocks))
            if nullables[i] and terminal not in firsts[i]
        )
        dispatch[terminal] = viable + fallbacks
    return (
        OP_CHOICE,
        dispatch,
        default,
        frozenset(union),
        blocks,
        firsts,
        nullables,
    )


class _Compiler:
    """Lowers one grammar + analysis into a :class:`ParseProgram`."""

    def __init__(self, grammar: Grammar, analysis: GrammarAnalysis) -> None:
        self.grammar = grammar
        self.analysis = analysis
        self.rule_names = tuple(grammar.rule_names())
        self.rule_ids = {name: i for i, name in enumerate(self.rule_names)}

    def compile(self, fingerprint: str | None) -> ParseProgram:
        grammar = self.grammar
        analysis = self.analysis
        token_names = sorted(grammar.tokens.names() | {EOF})
        consumable = tuple(
            t for t in CONSUMABLE_SYNC if t in grammar.tokens.names()
        )
        boundaries = frozenset(consumable) | frozenset((EOF,))
        code = tuple(self._compile_rule(rule) for rule in grammar)
        follow = tuple(
            analysis.follow.get(name, frozenset()) for name in self.rule_names
        )
        sync = tuple(f | boundaries for f in follow)
        start = None
        if grammar.start is not None:
            start = self.rule_ids.get(grammar.start)
        return ParseProgram(
            grammar_name=grammar.name,
            token_names=tuple(token_names),
            rule_names=self.rule_names,
            start=start,
            code=code,
            follow=follow,
            sync=sync,
            consumable=consumable,
            fingerprint=fingerprint,
        )

    def _compile_rule(self, rule):
        alternatives = rule.alternatives
        if len(alternatives) == 1:
            return self._compile_element(alternatives[0])
        return self._compile_choice(alternatives)

    def _compile_choice(self, alternatives):
        blocks = tuple(self._compile_element(alt) for alt in alternatives)
        firsts = tuple(self.analysis.first_of(alt) for alt in alternatives)
        nullables = tuple(self.analysis.nullable_of(alt) for alt in alternatives)
        return _make_choice(blocks, firsts, nullables)

    def _compile_element(self, element: Element):
        if isinstance(element, Tok):
            return (OP_MATCH, element.name, frozenset((element.name,)))
        if isinstance(element, Ref):
            return (OP_CALL, self.rule_ids[element.name])
        if isinstance(element, Seq):
            return (
                OP_SEQ,
                tuple(self._compile_element(item) for item in element.items),
            )
        if isinstance(element, Opt):
            return (
                OP_OPT,
                self._compile_element(element.inner),
                self.analysis.first_of(element.inner),
            )
        if isinstance(element, Rep):
            inner = self._compile_element(element.inner)
            first = self.analysis.first_of(element.inner)
            if element.separator is None:
                return (OP_LOOP, inner, first, element.min)
            return (
                OP_SEPLOOP,
                inner,
                self._compile_element(element.separator),
                first,
                self.analysis.first_of(element.separator),
                element.min,
            )
        if isinstance(element, Choice):
            return self._compile_choice(element.alternatives)
        raise TypeError(f"unknown element: {element!r}")


def compile_program(
    grammar: Grammar,
    analysis: GrammarAnalysis | None = None,
    fingerprint: str | None = None,
) -> ParseProgram:
    """Compile a (validated) grammar into its parse program.

    ``analysis`` lets callers that already computed FIRST/FOLLOW (the
    service registry, a parser) skip recomputation; when omitted the
    grammar is validated first, exactly like :class:`Parser` construction.
    """
    if analysis is None:
        validate(grammar).raise_if_failed()
        analysis = GrammarAnalysis(grammar)
    return _Compiler(grammar, analysis).compile(fingerprint)


# -- static-analysis helpers ---------------------------------------------------


def walk_instructions(instr):
    """Yield ``instr`` and every nested instruction, execution order.

    CHOICE yields its alternative blocks (declaration order); SEPLOOP
    yields item before separator.  This is the traversal both the
    coverage map and the :mod:`repro.lint` passes rely on.
    """
    yield instr
    op = instr[0]
    if op == OP_SEQ:
        for item in instr[1]:
            yield from walk_instructions(item)
    elif op == OP_CHOICE:
        for block in instr[4]:
            yield from walk_instructions(block)
    elif op in (OP_OPT, OP_LOOP):
        yield from walk_instructions(instr[1])
    elif op == OP_SEPLOOP:
        yield from walk_instructions(instr[1])
        yield from walk_instructions(instr[2])


def called_rules(instr) -> frozenset[int]:
    """Rule ids a compiled instruction tree can CALL into."""
    return frozenset(
        nested[1]
        for nested in walk_instructions(instr)
        if nested[0] == OP_CALL
    )


def reachable_rules(program: "ParseProgram") -> frozenset[int]:
    """Rule ids reachable from the program's start rule via CALLs.

    A program without a start rule reports every rule reachable — there
    is no root to be unreachable *from*.
    """
    if program.start is None:
        return frozenset(range(len(program.rule_names)))
    seen = {program.start}
    frontier = [program.start]
    while frontier:
        rid = frontier.pop()
        for callee in called_rules(program.code[rid]):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return frozenset(seen)


def rule_nullability(program: "ParseProgram") -> tuple[bool, ...]:
    """Per-rule "can derive epsilon" flags, recomputed from the program.

    The IR does not persist the grammar analysis it was compiled from, so
    consumers that only hold a deserialized program (the lint passes, a
    cache-loaded service entry) re-derive nullability by fixpoint over
    the instruction form.
    """
    nullable = [False] * len(program.rule_names)
    changed = True
    while changed:
        changed = False
        for rid, body in enumerate(program.code):
            if not nullable[rid] and instruction_nullable(body, nullable):
                nullable[rid] = True
                changed = True
    return tuple(nullable)


def instruction_nullable(instr, rule_nullable) -> bool:
    """Can an instruction tree match the empty token sequence?

    ``rule_nullable`` maps rule id -> nullability for CALL instructions
    (a sequence or list of bools, as produced by :func:`rule_nullability`).
    """
    op = instr[0]
    if op == OP_MATCH:
        return False
    if op == OP_CALL:
        return bool(rule_nullable[instr[1]])
    if op == OP_SEQ:
        return all(instruction_nullable(i, rule_nullable) for i in instr[1])
    if op == OP_CHOICE:
        return any(instruction_nullable(b, rule_nullable) for b in instr[4])
    if op == OP_OPT:
        return True
    if op == OP_LOOP:
        return instr[3] == 0 or instruction_nullable(instr[1], rule_nullable)
    # OP_SEPLOOP: nullable when zero items are allowed or the item is nullable
    return instr[5] == 0 or instruction_nullable(instr[1], rule_nullable)


# -- listing / metrics helpers ------------------------------------------------


def _instr_first(instr) -> frozenset[str]:
    """The guard set an instruction would accept as its first terminal."""
    op = instr[0]
    if op == OP_MATCH:
        return instr[2]
    if op == OP_CHOICE:
        return instr[3]
    if op in (OP_OPT, OP_LOOP):
        return instr[2]
    if op == OP_SEPLOOP:
        return instr[3]
    if op == OP_SEQ:
        first: set[str] = set()
        for item in instr[1]:
            first |= _instr_first(item)
            if item[0] not in (OP_OPT, OP_LOOP) and not (
                item[0] == OP_SEPLOOP and item[5] == 0
            ):
                break
        return frozenset(first)
    return frozenset()  # OP_CALL: the callee's guard is its own rule's


def _count_instrs(instr) -> int:
    op = instr[0]
    if op == OP_SEQ:
        return 1 + sum(_count_instrs(i) for i in instr[1])
    if op == OP_CHOICE:
        return 1 + sum(_count_instrs(b) for b in instr[4])
    if op in (OP_OPT, OP_LOOP):
        return 1 + _count_instrs(instr[1])
    if op == OP_SEPLOOP:
        return 1 + _count_instrs(instr[1]) + _count_instrs(instr[2])
    return 1


def _count_dispatch(instr) -> int:
    op = instr[0]
    if op == OP_SEQ:
        return sum(_count_dispatch(i) for i in instr[1])
    if op == OP_CHOICE:
        return len(instr[1]) + sum(_count_dispatch(b) for b in instr[4])
    if op in (OP_OPT, OP_LOOP):
        return _count_dispatch(instr[1])
    if op == OP_SEPLOOP:
        return _count_dispatch(instr[1]) + _count_dispatch(instr[2])
    return 0


def _fmt_set(terms: frozenset[str], limit: int = 8) -> str:
    names = sorted(terms)
    if len(names) > limit:
        shown = ", ".join(names[:limit])
        return f"{{{shown}, … +{len(names) - limit}}}"
    return "{" + ", ".join(names) + "}"


def _list_instr(instr, lines: list[str], depth: int, prefix: str = "") -> None:
    pad = "  " * depth
    op = instr[0]
    label = f"{pad}{prefix}{OP_NAMES[op]}"
    if op == OP_MATCH:
        lines.append(f"{label} {instr[1]}")
    elif op == OP_CALL:
        lines.append(f"{label} #{instr[1]}")
    elif op == OP_SEQ:
        lines.append(label)
        for item in instr[1]:
            _list_instr(item, lines, depth + 1)
    elif op == OP_CHOICE:
        blocks, firsts, nullables = instr[4], instr[5], instr[6]
        lines.append(f"{label} expected {_fmt_set(instr[3])}")
        for index, block in enumerate(blocks):
            tag = "ε " if nullables[index] else ""
            lines.append(
                f"{pad}  alt {index} {tag}first {_fmt_set(firsts[index])}"
            )
            _list_instr(block, lines, depth + 2)
    elif op == OP_OPT:
        lines.append(f"{label} guard {_fmt_set(instr[2])}")
        _list_instr(instr[1], lines, depth + 1)
    elif op == OP_LOOP:
        lines.append(
            f"{label} min={instr[3]} continue {_fmt_set(instr[2])}"
        )
        _list_instr(instr[1], lines, depth + 1)
    else:  # OP_SEPLOOP
        lines.append(
            f"{label} min={instr[5]} first {_fmt_set(instr[3])} "
            f"sep {_fmt_set(instr[4])}"
        )
        _list_instr(instr[1], lines, depth + 1, prefix="item: ")
        _list_instr(instr[2], lines, depth + 1, prefix="sep:  ")
