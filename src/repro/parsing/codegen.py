"""Standalone parser source generation — the reproduction's ANTLR analogue.

The paper feeds composed LL(k) grammars to ANTLR and ships the generated
parser.  :class:`ParserCodeGenerator` plays that role here: it
pretty-prints the *same* :class:`~repro.parsing.program.ParseProgram` the
interpreting :class:`~repro.parsing.parser.Parser` drives into a single
self-contained Python module (no imports beyond ``re``) containing the
scanner, FIRST-set constants, and one recursive-descent function per
rule.  Because both backends consume one compiled program, the generated
parser makes exactly the same decisions as the interpreter by
construction — the test suite's cross-checks guard the printer, not two
parallel encodings of the LL decision procedure.

Typical use::

    source = ParserCodeGenerator(grammar).generate()
    module = load_generated_parser(source)
    tree = module.parse("SELECT a FROM t")
"""

from __future__ import annotations

import re
import types

from ..grammar.grammar import Grammar
from .first_follow import GrammarAnalysis
from .program import (
    OP_CALL,
    OP_CHOICE,
    OP_LOOP,
    OP_MATCH,
    OP_OPT,
    OP_SEPLOOP,
    OP_SEQ,
    ParseProgram,
    compile_program,
)

_RUNTIME = '''
import re

EOF = "EOF"


class Token:
    __slots__ = ("type", "text", "line", "column", "offset")

    def __init__(self, type, text, line, column, offset):
        self.type = type
        self.text = text
        self.line = line
        self.column = column
        self.offset = offset

    def __repr__(self):
        return "%s(%r@%d:%d)" % (self.type, self.text, self.line, self.column)


class Node:
    __slots__ = ("name", "children")

    def __init__(self, name):
        self.name = name
        self.children = []

    def to_sexpr(self):
        parts = [self.name]
        for c in self.children:
            parts.append(c.to_sexpr() if isinstance(c, Node) else (c.text or c.type))
        return "(" + " ".join(parts) + ")"


class ParseError(SyntaxError):
    def __init__(self, message, line, column, expected):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column
        self.expected = expected


class ScanError(ParseError):
    pass


class _Fail(Exception):
    __slots__ = ()


class _State:
    __slots__ = ("tokens", "i", "fi", "fexp")

    def __init__(self, tokens):
        self.tokens = tokens
        self.i = 0
        self.fi = 0
        self.fexp = set()

    def la(self):
        return self.tokens[self.i].type

    def fail(self, expected):
        if self.i > self.fi:
            self.fi = self.i
            self.fexp = set(expected)
        elif self.i == self.fi:
            self.fexp |= set(expected)
        raise _Fail()

    def match(self, node, name):
        token = self.tokens[self.i]
        if token.type != name:
            self.fail((name,))
        node.children.append(token)
        self.i += 1


def _scan(text):
    tokens = []
    pos, line, col = 0, 1, 1
    n = len(text)
    while pos < n:
        m = _MASTER.match(text, pos)
        if m is None or m.end() == pos:
            raise ScanError("unexpected character %r" % text[pos], line, col, frozenset())
        name = m.lastgroup
        lexeme = m.group()
        if name not in _SKIP:
            ttype = name
            if name in _IDENT_RULES:
                ttype = _KEYWORDS.get(lexeme.upper(), name)
            tokens.append(Token(ttype, lexeme, line, col, pos))
        nl = lexeme.count("\\n")
        if nl:
            line += nl
            col = len(lexeme) - lexeme.rfind("\\n")
        else:
            col += len(lexeme)
        pos = m.end()
    tokens.append(Token(EOF, "", line, col, pos))
    return tokens


def parse(text, start=None):
    tokens = _scan(text)
    s = _State(tokens)
    fn = _RULES[start or _START]
    try:
        node = fn(s)
        if s.la() != EOF:
            s.fail((EOF,))
        return node
    except _Fail:
        t = s.tokens[min(s.fi, len(s.tokens) - 1)]
        found = "end of input" if t.type == EOF else repr(t.text)
        raise ParseError(
            "syntax error: found %s, expected one of: %s"
            % (found, ", ".join(sorted(s.fexp))),
            t.line,
            t.column,
            frozenset(s.fexp),
        ) from None


def accepts(text, start=None):
    try:
        parse(text, start=start)
    except ParseError:
        return False
    return True
'''


#: Module-level constant embedded in generated parsers; the service
#: layer's on-disk artifact cache uses it to validate that a cached file
#: still corresponds to the fingerprint it is filed under.
FINGERPRINT_CONSTANT = "_FINGERPRINT"


def source_fingerprint(source: str) -> str | None:
    """Extract the embedded fingerprint digest from generated source."""
    prefix = f"{FINGERPRINT_CONSTANT} = "
    for line in source.splitlines():
        if line.startswith(prefix):
            value = line[len(prefix):].strip()
            if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
                return value[1:-1]
            return None
    return None


class ParserCodeGenerator:
    """Pretty-prints one parse program into standalone Python source."""

    def __init__(
        self,
        grammar: Grammar,
        analysis: GrammarAnalysis | None = None,
        fingerprint: str | None = None,
        program: ParseProgram | None = None,
    ) -> None:
        if program is None:
            program = compile_program(
                grammar,
                analysis=analysis,
                fingerprint=fingerprint,
            )
        self.grammar = grammar
        self.analysis = analysis
        self.program = program
        self.fingerprint = (
            fingerprint if fingerprint is not None else program.fingerprint
        )
        self._first_consts: dict[frozenset[str], str] = {}
        self._helpers: list[str] = []
        self._counter = 0

    # -- public ---------------------------------------------------------------

    def generate(self) -> str:
        """Emit the complete module source."""
        program = self.program
        rule_sources = [
            self._emit_rule(rid, name)
            for rid, name in enumerate(program.rule_names)
        ]
        lines: list[str] = []
        lines.append('"""Parser for grammar %r.' % program.grammar_name)
        lines.append("")
        lines.append("Generated by repro.parsing.codegen - do not edit by hand.")
        lines.append('"""')
        if self.fingerprint is not None:
            lines.append(f"{FINGERPRINT_CONSTANT} = {self.fingerprint!r}")
        lines.append(_RUNTIME)
        lines.extend(self._emit_scanner_tables())
        lines.append("")
        for const_set, const_name in sorted(
            self._first_consts.items(), key=lambda kv: kv[1]
        ):
            terms = ", ".join(repr(t) for t in sorted(const_set))
            lines.append(f"{const_name} = frozenset(({terms}{',' if len(const_set) == 1 else ''}))")
        lines.append("")
        lines.extend(self._helpers)
        lines.extend(rule_sources)
        lines.append("")
        rule_map = ", ".join(
            f"{name!r}: _parse_{name}" for name in program.rule_names
        )
        lines.append(f"_RULES = {{{rule_map}}}")
        lines.append(f"_START = {program.start_name()!r}")
        return "\n".join(lines) + "\n"

    # -- scanner tables ----------------------------------------------------------

    def _emit_scanner_tables(self) -> list[str]:
        tokens = self.grammar.tokens
        parts: list[str] = []
        for d in tokens.patterns:
            parts.append(f"(?P<{d.name}>{d.pattern})")
        for d in tokens.literals:
            parts.append(f"(?P<{d.name}>{re.escape(d.pattern)})")
        if not parts:
            parts.append(r"(?P<_NOTHING_>(?!))")
        master = "|".join(parts)
        skip = sorted(d.name for d in tokens if d.skip)
        keywords = tokens.keywords
        return [
            f"_MASTER = re.compile({master!r})",
            f"_SKIP = frozenset({skip!r})",
            f"_KEYWORDS = {keywords!r}",
            "_IDENT_RULES = ('IDENTIFIER',)",
        ]

    # -- emission helpers -----------------------------------------------------------

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _first_const(self, terms: frozenset[str]) -> str:
        if terms not in self._first_consts:
            self._first_consts[terms] = f"_F{len(self._first_consts)}"
        return self._first_consts[terms]

    def _emit_rule(self, rule_id: int, name: str) -> str:
        body: list[str] = []
        self._emit_instr(self.program.code[rule_id], body, 1)
        stmts = "\n".join(body) if body else "    pass"
        return (
            f"\n\ndef _parse_{name}(s):\n"
            f"    node = Node({name!r})\n"
            f"{stmts}\n"
            f"    return node"
        )

    def _emit_instr(self, instr, out: list[str], depth: int) -> None:
        pad = "    " * depth
        op = instr[0]
        if op == OP_MATCH:
            out.append(f"{pad}s.match(node, {instr[1]!r})")
            return
        if op == OP_CALL:
            callee = self.program.rule_names[instr[1]]
            out.append(f"{pad}node.children.append(_parse_{callee}(s))")
            return
        if op == OP_SEQ:
            if not instr[1]:
                out.append(f"{pad}pass")
            for item in instr[1]:
                self._emit_instr(item, out, depth)
            return
        if op == OP_OPT:
            self._emit_optional(instr, out, depth)
            return
        if op in (OP_LOOP, OP_SEPLOOP):
            self._emit_repetition(instr, out, depth)
            return
        if op == OP_CHOICE:
            self._emit_dispatch(instr, out, depth)
            return
        raise TypeError(f"unknown opcode: {op!r}")

    def _emit_optional(self, instr, out: list[str], depth: int) -> None:
        pad = "    " * depth
        uid = self._fresh()
        first = self._first_const(instr[2])
        out.append(f"{pad}if s.la() in {first}:")
        out.append(f"{pad}    _m{uid} = (s.i, len(node.children))")
        out.append(f"{pad}    try:")
        self._emit_instr(instr[1], out, depth + 2)
        out.append(f"{pad}    except _Fail:")
        out.append(f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]")

    def _emit_repetition(self, instr, out: list[str], depth: int) -> None:
        pad = "    " * depth
        uid = self._fresh()
        if instr[0] == OP_LOOP:
            inner, first_set, minimum = instr[1], instr[2], instr[3]
            first = self._first_const(first_set)
            out.append(f"{pad}_n{uid} = 0")
            out.append(f"{pad}while s.la() in {first}:")
            out.append(f"{pad}    _m{uid} = (s.i, len(node.children))")
            out.append(f"{pad}    try:")
            self._emit_instr(inner, out, depth + 2)
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]; break"
            )
            out.append(f"{pad}    if s.i == _m{uid}[0]:")
            out.append(f"{pad}        break")
            out.append(f"{pad}    _n{uid} += 1")
            if minimum == 1:
                out.append(f"{pad}if _n{uid} < 1:")
                out.append(f"{pad}    s.fail({first})")
            return
        # OP_SEPLOOP: (op, inner, sep, first, sep_first, min)
        inner, sep, first_set, sep_first_set, minimum = instr[1:6]
        first = self._first_const(first_set)
        sep_first = self._first_const(sep_first_set)
        inner_depth = depth
        if minimum == 0:
            out.append(f"{pad}if s.la() in {first}:")
            inner_depth = depth + 1
        pad2 = "    " * inner_depth
        self._emit_instr(inner, out, inner_depth)
        out.append(f"{pad2}while s.la() in {sep_first}:")
        out.append(f"{pad2}    _m{uid} = (s.i, len(node.children))")
        out.append(f"{pad2}    try:")
        self._emit_instr(sep, out, inner_depth + 2)
        self._emit_instr(inner, out, inner_depth + 2)
        out.append(f"{pad2}    except _Fail:")
        out.append(
            f"{pad2}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]; break"
        )

    def _emit_dispatch(self, instr, out: list[str], depth: int) -> None:
        """Ordered-choice dispatch matching the interpreter's strategy."""
        pad = "    " * depth
        uid = self._fresh()
        # (op, dispatch, default, expected, blocks, firsts, nullables)
        blocks, firsts, nullables = instr[4], instr[5], instr[6]
        helper_names: list[str] = []
        for block in blocks:
            helper = f"_a{self._fresh()}"
            body: list[str] = []
            self._emit_instr(block, body, 1)
            stmts = "\n".join(body) if body else "    pass"
            self._helpers.append(f"\n\ndef {helper}(s, node):\n{stmts}\n")
            helper_names.append(helper)

        union_const = self._first_const(instr[3])

        out.append(f"{pad}_ok{uid} = False")
        out.append(f"{pad}_m{uid} = (s.i, len(node.children))")
        # pass 1: alternatives whose FIRST contains the lookahead, in order
        for index, helper in enumerate(helper_names):
            first = self._first_const(firsts[index])
            out.append(f"{pad}if not _ok{uid} and s.la() in {first}:")
            out.append(f"{pad}    try:")
            out.append(f"{pad}        {helper}(s, node); _ok{uid} = True")
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]"
            )
        # pass 2: nullable alternatives as epsilon fallbacks
        for index, helper in enumerate(helper_names):
            if not nullables[index]:
                continue
            first = self._first_const(firsts[index])
            out.append(f"{pad}if not _ok{uid} and s.la() not in {first}:")
            out.append(f"{pad}    try:")
            out.append(f"{pad}        {helper}(s, node); _ok{uid} = True")
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]"
            )
        out.append(f"{pad}if not _ok{uid}:")
        out.append(f"{pad}    s.fail({union_const})")


def generate_parser_source(
    grammar: Grammar,
    analysis: GrammarAnalysis | None = None,
    fingerprint: str | None = None,
    program: ParseProgram | None = None,
) -> str:
    """One-call convenience wrapper around :class:`ParserCodeGenerator`.

    ``analysis``/``program`` let a caller that already compiled the
    product (the registry) skip recomputation; ``fingerprint`` embeds
    provenance the on-disk artifact cache validates on load.
    """
    return ParserCodeGenerator(
        grammar, analysis=analysis, fingerprint=fingerprint, program=program
    ).generate()


def load_generated_parser(source: str, module_name: str = "generated_parser"):
    """Execute generated parser source and return it as a module object."""
    module = types.ModuleType(module_name)
    exec(compile(source, f"<{module_name}>", "exec"), module.__dict__)
    return module
