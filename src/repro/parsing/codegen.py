"""Standalone parser source generation — the reproduction's ANTLR analogue.

The paper feeds composed LL(k) grammars to ANTLR and ships the generated
parser.  :class:`ParserCodeGenerator` plays that role here: it emits a
single self-contained Python module (no imports beyond ``re``) containing
the scanner, FIRST-set constants, and one recursive-descent function per
rule.  The generated parser makes exactly the same decisions as the
interpreting :class:`~repro.parsing.parser.Parser`, so both accept the
same language; the test suite cross-checks them.

Typical use::

    source = ParserCodeGenerator(grammar).generate()
    module = load_generated_parser(source)
    tree = module.parse("SELECT a FROM t")
"""

from __future__ import annotations

import types

from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar
from ..grammar.validate import validate
from .first_follow import GrammarAnalysis

_RUNTIME = '''
import re

EOF = "EOF"


class Token:
    __slots__ = ("type", "text", "line", "column", "offset")

    def __init__(self, type, text, line, column, offset):
        self.type = type
        self.text = text
        self.line = line
        self.column = column
        self.offset = offset

    def __repr__(self):
        return "%s(%r@%d:%d)" % (self.type, self.text, self.line, self.column)


class Node:
    __slots__ = ("name", "children")

    def __init__(self, name):
        self.name = name
        self.children = []

    def to_sexpr(self):
        parts = [self.name]
        for c in self.children:
            parts.append(c.to_sexpr() if isinstance(c, Node) else (c.text or c.type))
        return "(" + " ".join(parts) + ")"


class ParseError(SyntaxError):
    def __init__(self, message, line, column, expected):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column
        self.expected = expected


class ScanError(ParseError):
    pass


class _Fail(Exception):
    __slots__ = ()


class _State:
    __slots__ = ("tokens", "i", "fi", "fexp")

    def __init__(self, tokens):
        self.tokens = tokens
        self.i = 0
        self.fi = 0
        self.fexp = set()

    def la(self):
        return self.tokens[self.i].type

    def fail(self, expected):
        if self.i > self.fi:
            self.fi = self.i
            self.fexp = set(expected)
        elif self.i == self.fi:
            self.fexp |= set(expected)
        raise _Fail()

    def match(self, node, name):
        token = self.tokens[self.i]
        if token.type != name:
            self.fail((name,))
        node.children.append(token)
        self.i += 1


def _scan(text):
    tokens = []
    pos, line, col = 0, 1, 1
    n = len(text)
    while pos < n:
        m = _MASTER.match(text, pos)
        if m is None or m.end() == pos:
            raise ScanError("unexpected character %r" % text[pos], line, col, frozenset())
        name = m.lastgroup
        lexeme = m.group()
        if name not in _SKIP:
            ttype = name
            if name in _IDENT_RULES:
                ttype = _KEYWORDS.get(lexeme.upper(), name)
            tokens.append(Token(ttype, lexeme, line, col, pos))
        nl = lexeme.count("\\n")
        if nl:
            line += nl
            col = len(lexeme) - lexeme.rfind("\\n")
        else:
            col += len(lexeme)
        pos = m.end()
    tokens.append(Token(EOF, "", line, col, pos))
    return tokens


def parse(text, start=None):
    tokens = _scan(text)
    s = _State(tokens)
    fn = _RULES[start or _START]
    try:
        node = fn(s)
        if s.la() != EOF:
            s.fail((EOF,))
        return node
    except _Fail:
        t = s.tokens[min(s.fi, len(s.tokens) - 1)]
        found = "end of input" if t.type == EOF else repr(t.text)
        raise ParseError(
            "syntax error: found %s, expected one of: %s"
            % (found, ", ".join(sorted(s.fexp))),
            t.line,
            t.column,
            frozenset(s.fexp),
        ) from None


def accepts(text, start=None):
    try:
        parse(text, start=start)
    except ParseError:
        return False
    return True
'''


#: Module-level constant embedded in generated parsers; the service
#: layer's on-disk artifact cache uses it to validate that a cached file
#: still corresponds to the fingerprint it is filed under.
FINGERPRINT_CONSTANT = "_FINGERPRINT"


def source_fingerprint(source: str) -> str | None:
    """Extract the embedded fingerprint digest from generated source."""
    prefix = f"{FINGERPRINT_CONSTANT} = "
    for line in source.splitlines():
        if line.startswith(prefix):
            value = line[len(prefix):].strip()
            if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
                return value[1:-1]
            return None
    return None


class ParserCodeGenerator:
    """Compiles one grammar into standalone Python parser source."""

    def __init__(
        self,
        grammar: Grammar,
        analysis: GrammarAnalysis | None = None,
        fingerprint: str | None = None,
    ) -> None:
        if analysis is None:
            validate(grammar).raise_if_failed()
            analysis = GrammarAnalysis(grammar)
        self.grammar = grammar
        self.analysis = analysis
        self.fingerprint = fingerprint
        self._first_consts: dict[frozenset[str], str] = {}
        self._helpers: list[str] = []
        self._counter = 0

    # -- public ---------------------------------------------------------------

    def generate(self) -> str:
        """Emit the complete module source."""
        rule_sources = [self._emit_rule(rule) for rule in self.grammar]
        lines: list[str] = []
        lines.append('"""Parser for grammar %r.' % self.grammar.name)
        lines.append("")
        lines.append("Generated by repro.parsing.codegen - do not edit by hand.")
        lines.append('"""')
        if self.fingerprint is not None:
            lines.append(f"{FINGERPRINT_CONSTANT} = {self.fingerprint!r}")
        lines.append(_RUNTIME)
        lines.extend(self._emit_scanner_tables())
        lines.append("")
        for const_set, const_name in sorted(
            self._first_consts.items(), key=lambda kv: kv[1]
        ):
            terms = ", ".join(repr(t) for t in sorted(const_set))
            lines.append(f"{const_name} = frozenset(({terms}{',' if len(const_set) == 1 else ''}))")
        lines.append("")
        lines.extend(self._helpers)
        lines.extend(rule_sources)
        lines.append("")
        rule_map = ", ".join(
            f"{name!r}: _parse_{name}" for name in self.grammar.rule_names()
        )
        lines.append(f"_RULES = {{{rule_map}}}")
        lines.append(f"_START = {self.grammar.start!r}")
        return "\n".join(lines) + "\n"

    # -- scanner tables ----------------------------------------------------------

    def _emit_scanner_tables(self) -> list[str]:
        tokens = self.grammar.tokens
        parts: list[str] = []
        for d in tokens.patterns:
            parts.append(f"(?P<{d.name}>{d.pattern})")
        for d in tokens.literals:
            import re as _re

            parts.append(f"(?P<{d.name}>{_re.escape(d.pattern)})")
        if not parts:
            parts.append(r"(?P<_NOTHING_>(?!))")
        master = "|".join(parts)
        skip = sorted(d.name for d in tokens if d.skip)
        keywords = tokens.keywords
        lines = [
            f"_MASTER = re.compile({master!r})",
            f"_SKIP = frozenset({skip!r})",
            f"_KEYWORDS = {keywords!r}",
            "_IDENT_RULES = ('IDENTIFIER',)",
        ]
        return lines

    # -- emission helpers -----------------------------------------------------------

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _first_const(self, terms: frozenset[str]) -> str:
        if terms not in self._first_consts:
            self._first_consts[terms] = f"_F{len(self._first_consts)}"
        return self._first_consts[terms]

    def _emit_rule(self, rule) -> str:
        body: list[str] = []
        if len(rule.alternatives) == 1:
            self._emit_element(rule.alternatives[0], body, 1)
        else:
            self._emit_dispatch(list(rule.alternatives), body, 1)
        stmts = "\n".join(body) if body else "    pass"
        return (
            f"\n\ndef _parse_{rule.name}(s):\n"
            f"    node = Node({rule.name!r})\n"
            f"{stmts}\n"
            f"    return node"
        )

    def _emit_element(self, element: Element, out: list[str], depth: int) -> None:
        pad = "    " * depth
        if isinstance(element, Tok):
            out.append(f"{pad}s.match(node, {element.name!r})")
            return
        if isinstance(element, Ref):
            out.append(f"{pad}node.children.append(_parse_{element.name}(s))")
            return
        if isinstance(element, Seq):
            if not element.items:
                out.append(f"{pad}pass")
            for item in element.items:
                self._emit_element(item, out, depth)
            return
        if isinstance(element, Opt):
            self._emit_optional(element.inner, out, depth)
            return
        if isinstance(element, Rep):
            self._emit_repetition(element, out, depth)
            return
        if isinstance(element, Choice):
            self._emit_dispatch(list(element.alternatives), out, depth)
            return
        raise TypeError(f"unknown element: {element!r}")

    def _emit_optional(self, inner: Element, out: list[str], depth: int) -> None:
        pad = "    " * depth
        uid = self._fresh()
        first = self._first_const(self.analysis.first_of(inner))
        out.append(f"{pad}if s.la() in {first}:")
        out.append(f"{pad}    _m{uid} = (s.i, len(node.children))")
        out.append(f"{pad}    try:")
        self._emit_element(inner, out, depth + 2)
        out.append(f"{pad}    except _Fail:")
        out.append(f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]")

    def _emit_repetition(self, rep: Rep, out: list[str], depth: int) -> None:
        pad = "    " * depth
        uid = self._fresh()
        first = self._first_const(self.analysis.first_of(rep.inner))
        if rep.separator is None:
            out.append(f"{pad}_n{uid} = 0")
            out.append(f"{pad}while s.la() in {first}:")
            out.append(f"{pad}    _m{uid} = (s.i, len(node.children))")
            out.append(f"{pad}    try:")
            self._emit_element(rep.inner, out, depth + 2)
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]; break"
            )
            out.append(f"{pad}    if s.i == _m{uid}[0]:")
            out.append(f"{pad}        break")
            out.append(f"{pad}    _n{uid} += 1")
            if rep.min == 1:
                out.append(f"{pad}if _n{uid} < 1:")
                out.append(f"{pad}    s.fail({first})")
            return
        sep_first = self._first_const(self.analysis.first_of(rep.separator))
        inner_depth = depth
        if rep.min == 0:
            out.append(f"{pad}if s.la() in {first}:")
            inner_depth = depth + 1
        pad2 = "    " * inner_depth
        self._emit_element(rep.inner, out, inner_depth)
        out.append(f"{pad2}while s.la() in {sep_first}:")
        out.append(f"{pad2}    _m{uid} = (s.i, len(node.children))")
        out.append(f"{pad2}    try:")
        self._emit_element(rep.separator, out, inner_depth + 2)
        self._emit_element(rep.inner, out, inner_depth + 2)
        out.append(f"{pad2}    except _Fail:")
        out.append(
            f"{pad2}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]; break"
        )

    def _emit_dispatch(
        self, alternatives: list[Element], out: list[str], depth: int
    ) -> None:
        """Ordered-choice dispatch matching the interpreter's strategy."""
        pad = "    " * depth
        uid = self._fresh()
        helper_names: list[str] = []
        for alt in alternatives:
            helper = f"_a{self._fresh()}"
            body: list[str] = []
            self._emit_element(alt, body, 1)
            stmts = "\n".join(body) if body else "    pass"
            self._helpers.append(f"\n\ndef {helper}(s, node):\n{stmts}\n")
            helper_names.append(helper)

        union: set[str] = set()
        for alt in alternatives:
            union |= self.analysis.first_of(alt)
        union_const = self._first_const(frozenset(union))

        out.append(f"{pad}_ok{uid} = False")
        out.append(f"{pad}_m{uid} = (s.i, len(node.children))")
        # pass 1: alternatives whose FIRST contains the lookahead, in order
        for alt, helper in zip(alternatives, helper_names):
            first = self._first_const(self.analysis.first_of(alt))
            out.append(f"{pad}if not _ok{uid} and s.la() in {first}:")
            out.append(f"{pad}    try:")
            out.append(f"{pad}        {helper}(s, node); _ok{uid} = True")
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]"
            )
        # pass 2: nullable alternatives as epsilon fallbacks
        for alt, helper in zip(alternatives, helper_names):
            if not self.analysis.nullable_of(alt):
                continue
            first = self._first_const(self.analysis.first_of(alt))
            out.append(f"{pad}if not _ok{uid} and s.la() not in {first}:")
            out.append(f"{pad}    try:")
            out.append(f"{pad}        {helper}(s, node); _ok{uid} = True")
            out.append(f"{pad}    except _Fail:")
            out.append(
                f"{pad}        s.i = _m{uid}[0]; del node.children[_m{uid}[1]:]"
            )
        out.append(f"{pad}if not _ok{uid}:")
        out.append(f"{pad}    s.fail({union_const})")


def generate_parser_source(
    grammar: Grammar,
    analysis: GrammarAnalysis | None = None,
    fingerprint: str | None = None,
) -> str:
    """One-call convenience wrapper around :class:`ParserCodeGenerator`.

    ``analysis`` lets a caller that already computed FIRST/FOLLOW sets
    (the registry) skip recomputation; ``fingerprint`` embeds provenance
    the on-disk artifact cache validates on load.
    """
    return ParserCodeGenerator(
        grammar, analysis=analysis, fingerprint=fingerprint
    ).generate()


def load_generated_parser(source: str, module_name: str = "generated_parser"):
    """Execute generated parser source and return it as a module object."""
    module = types.ModuleType(module_name)
    exec(compile(source, f"<{module_name}>", "exec"), module.__dict__)
    return module
