"""Nullable / FIRST / FOLLOW computation over EBNF grammars.

The analysis works directly on the EBNF expression algebra (no prior
BNF-expansion pass), which keeps the composed grammars readable in
diagnostics.  All three sets are computed by standard fixpoint iteration
(Aho, Lam, Sethi, Ullman — the paper's reference [1]).

``FIRST`` sets contain terminal names.  End-of-input is represented by the
scanner's EOF terminal name so FOLLOW sets need no special symbol.
"""

from __future__ import annotations

from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar
from ..lexer.token import EOF


class GrammarAnalysis:
    """Computes and caches nullable/FIRST/FOLLOW for one grammar.

    The grammar must not change after analysis; build a new analysis after
    composition steps.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.nullable: dict[str, bool] = {}
        self.first: dict[str, frozenset[str]] = {}
        self.follow: dict[str, frozenset[str]] = {}
        # element-level caches, keyed by id(); the stored element reference
        # keeps the object alive so ids cannot be recycled.  Only valid once
        # the fixpoints are done, hence the _frozen flag.
        self._frozen = False
        self._first_cache: dict[int, tuple[Element, frozenset[str]]] = {}
        self._nullable_cache: dict[int, tuple[Element, bool]] = {}
        self._compute_nullable()
        self._compute_first()
        self._compute_follow()
        self._frozen = True

    # -- public element-level queries --------------------------------------

    def nullable_of(self, element: Element) -> bool:
        """Can this element derive the empty string?"""
        if self._frozen:
            cached = self._nullable_cache.get(id(element))
            if cached is not None:
                return cached[1]
            result = self._nullable_uncached(element)
            self._nullable_cache[id(element)] = (element, result)
            return result
        return self._nullable_uncached(element)

    def _nullable_uncached(self, element: Element) -> bool:
        if isinstance(element, Tok):
            return False
        if isinstance(element, Ref):
            return self.nullable.get(element.name, False)
        if isinstance(element, Opt):
            return True
        if isinstance(element, Rep):
            return element.min == 0 or self.nullable_of(element.inner)
        if isinstance(element, Seq):
            return all(self.nullable_of(i) for i in element.items)
        if isinstance(element, Choice):
            return any(self.nullable_of(a) for a in element.alternatives)
        raise TypeError(f"unknown element: {element!r}")

    def first_of(self, element: Element) -> frozenset[str]:
        """Terminals that can begin a string derived from this element."""
        if self._frozen:
            cached = self._first_cache.get(id(element))
            if cached is not None:
                return cached[1]
            result = self._first_uncached(element)
            self._first_cache[id(element)] = (element, result)
            return result
        return self._first_uncached(element)

    def _first_uncached(self, element: Element) -> frozenset[str]:
        if isinstance(element, Tok):
            return frozenset((element.name,))
        if isinstance(element, Ref):
            return self.first.get(element.name, frozenset())
        if isinstance(element, (Opt, Rep)):
            inner = self.first_of(element.inner)
            if isinstance(element, Rep) and element.separator is not None:
                # after one item, the separator may start the continuation,
                # but the *first* terminal is still from the item
                return inner
            return inner
        if isinstance(element, Seq):
            result: set[str] = set()
            for item in element.items:
                result |= self.first_of(item)
                if not self.nullable_of(item):
                    break
            return frozenset(result)
        if isinstance(element, Choice):
            result = set()
            for alt in element.alternatives:
                result |= self.first_of(alt)
            return frozenset(result)
        raise TypeError(f"unknown element: {element!r}")

    def first_of_sequence(self, items: list[Element]) -> frozenset[str]:
        """FIRST of a suffix of a flattened alternative."""
        result: set[str] = set()
        for item in items:
            result |= self.first_of(item)
            if not self.nullable_of(item):
                break
        return frozenset(result)

    def first_follow_overlap(self, name: str) -> frozenset[str]:
        """Terminals in both FIRST and FOLLOW of a *nullable* rule.

        For non-nullable rules the overlap is harmless (the rule always
        consumes input), so the empty set is returned; for nullable rules
        a non-empty overlap is the classical FIRST/FOLLOW conflict the
        :mod:`repro.lint` passes grade as L0105.
        """
        if not self.nullable.get(name, False):
            return frozenset()
        return self.first.get(name, frozenset()) & self.follow.get(
            name, frozenset()
        )

    # -- fixpoint computations ----------------------------------------------

    def _compute_nullable(self) -> None:
        self.nullable = {name: False for name in self.grammar.rule_names()}
        changed = True
        while changed:
            changed = False
            for rule in self.grammar:
                if self.nullable[rule.name]:
                    continue
                if any(self.nullable_of(a) for a in rule.alternatives):
                    self.nullable[rule.name] = True
                    changed = True

    def _compute_first(self) -> None:
        self.first = {name: frozenset() for name in self.grammar.rule_names()}
        changed = True
        while changed:
            changed = False
            for rule in self.grammar:
                combined: set[str] = set(self.first[rule.name])
                for alt in rule.alternatives:
                    combined |= self.first_of(alt)
                frozen = frozenset(combined)
                if frozen != self.first[rule.name]:
                    self.first[rule.name] = frozen
                    changed = True

    def _compute_follow(self) -> None:
        follow: dict[str, set[str]] = {
            name: set() for name in self.grammar.rule_names()
        }
        if self.grammar.start is not None and self.grammar.start in follow:
            follow[self.grammar.start].add(EOF)

        # constraints: (a) terminals directly added to FOLLOW(nt),
        # (b) FOLLOW(lhs) flows into FOLLOW(nt) when nt can end lhs.
        direct: dict[str, set[str]] = {name: set() for name in follow}
        flows: dict[str, set[str]] = {name: set() for name in follow}

        for rule in self.grammar:
            for alt in rule.alternatives:
                self._collect_follow_constraints(
                    alt, rule.name, direct, flows
                )

        for name in follow:
            follow[name] |= direct.get(name, set())

        changed = True
        while changed:
            changed = False
            for target, sources in flows.items():
                for source in sources:
                    added = follow[source] - follow[target]
                    if added:
                        follow[target] |= added
                        changed = True
        self.follow = {name: frozenset(s) for name, s in follow.items()}

    def _collect_follow_constraints(
        self,
        element: Element,
        lhs: str,
        direct: dict[str, set[str]],
        flows: dict[str, set[str]],
    ) -> None:
        """Walk one alternative, recording FOLLOW constraints.

        ``direct[nt]`` accumulates terminals that can follow ``nt``;
        ``flows[nt]`` accumulates nonterminals whose FOLLOW flows into
        ``nt``'s FOLLOW.
        """

        def handle(seq_items: list[Element], tail_owner: str | None) -> None:
            """Process a sequence whose end is followed by FOLLOW(tail_owner)."""
            for index, item in enumerate(seq_items):
                rest = seq_items[index + 1 :]
                rest_first = self.first_of_sequence(rest)
                rest_nullable = all(self.nullable_of(r) for r in rest)
                self._constrain_element(
                    item, rest_first, rest_nullable, tail_owner, direct, flows
                )

        items = element.items if isinstance(element, Seq) else [element]
        handle(list(items), lhs)

    def _constrain_element(
        self,
        element: Element,
        rest_first: frozenset[str],
        rest_nullable: bool,
        tail_owner: str | None,
        direct: dict[str, set[str]],
        flows: dict[str, set[str]],
    ) -> None:
        if isinstance(element, Tok):
            return
        if isinstance(element, Ref):
            name = element.name
            if name not in direct:
                direct[name] = set()
                flows[name] = set()
            direct[name] |= rest_first
            if rest_nullable and tail_owner is not None:
                flows[name].add(tail_owner)
            return
        if isinstance(element, Opt):
            self._constrain_element(
                element.inner, rest_first, rest_nullable, tail_owner, direct, flows
            )
            return
        if isinstance(element, Rep):
            # the item may be followed by the separator/itself or by the rest
            inner_follow = set(rest_first) | set(self.first_of(element.inner))
            if element.separator is not None:
                inner_follow |= self.first_of(element.separator)
            self._constrain_element(
                element.inner,
                frozenset(inner_follow),
                rest_nullable,
                tail_owner,
                direct,
                flows,
            )
            if element.separator is not None:
                self._constrain_element(
                    element.separator,
                    self.first_of(element.inner),
                    False,
                    None,
                    direct,
                    flows,
                )
            return
        if isinstance(element, Choice):
            for alt in element.alternatives:
                sub_items = list(alt.items) if isinstance(alt, Seq) else [alt]
                for index, item in enumerate(sub_items):
                    rest = sub_items[index + 1 :]
                    sub_rest_first = set(self.first_of_sequence(rest)) | (
                        set(rest_first)
                        if all(self.nullable_of(r) for r in rest)
                        else set()
                    )
                    sub_rest_nullable = rest_nullable and all(
                        self.nullable_of(r) for r in rest
                    )
                    self._constrain_element(
                        item,
                        frozenset(sub_rest_first),
                        sub_rest_nullable,
                        tail_owner,
                        direct,
                        flows,
                    )
            return
        if isinstance(element, Seq):
            sub_items = list(element.items)
            for index, item in enumerate(sub_items):
                rest = sub_items[index + 1 :]
                sub_rest_first = set(self.first_of_sequence(rest)) | (
                    set(rest_first)
                    if all(self.nullable_of(r) for r in rest)
                    else set()
                )
                sub_rest_nullable = rest_nullable and all(
                    self.nullable_of(r) for r in rest
                )
                self._constrain_element(
                    item,
                    frozenset(sub_rest_first),
                    sub_rest_nullable,
                    tail_owner,
                    direct,
                    flows,
                )
            return
        raise TypeError(f"unknown element: {element!r}")
