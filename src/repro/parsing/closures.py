"""Closure-compiled parse backend: a ParseProgram lowered to Python code.

The IR interpreter (:mod:`repro.parsing.parser`) pays a tuple dispatch
per instruction.  This module removes that dispatch by *lowering* a
:class:`~repro.parsing.program.ParseProgram` to one Python function per
rule — straight-line token matches, native ``while`` loops for
repetition, pre-grouped dispatch dictionaries for CHOICE — and
``exec``-compiling the result once at registry-build time (threaded
code).

Semantics are interpreter-exact and enforced by the differential suite:
identical parse trees on accepts, identical line/column/expected sets
on rejects, identical budget/deadline/depth diagnostics.  The one
documented delta is fuel granularity: the interpreter ticks the step
budget per *instruction*, compiled code per *rule call*, so an E0202
trip fires at a slightly different step count (never a different
verdict for well-formed budgets, which are input-scaled).

Layers:

* a module-level runtime (:class:`RunState`, ``_fail`` / ``_check`` /
  ``_depth_fail``) shared by every compiled artifact;
* :func:`generate_closure_source` — a self-contained artifact module
  (cacheable on disk next to ``<digest>.py`` / ``<digest>.ir.json``,
  embedding the same fingerprint constant as generated source);
* :class:`ClosureProgram` — the exec'd artifact: per-rule functions
  plus a lazily compiled *instrumented* twin whose emitted counter
  bumps mirror the interpreter's ``_exec_cov`` point for point;
* :class:`CompiledScanner` — a tighter tokenize loop over the same
  master pattern (all error/recovery paths delegate to the wrapped
  scanner);
* :class:`ClosureParser` — a :class:`~repro.parsing.parser.Parser`
  subclass overriding only ``_call_rule``, so the whole public surface
  (diagnostics, panic-mode recovery, hints, coverage) is inherited
  while rule execution runs compiled.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable

from ..errors import ParseBudgetExceeded, ParseDeadlineExceeded
from ..lexer.token import EOF, Token, eof_token
from .codegen import FINGERPRINT_CONSTANT, source_fingerprint
from .parser import (
    DEADLINE_CHECK_INTERVAL,
    DEFAULT_STEP_FLOOR,
    DEFAULT_STEPS_PER_TOKEN,
    Parser,
    _Failure,
)
from .program import (
    OP_CALL,
    OP_CHOICE,
    OP_LOOP,
    OP_MATCH,
    OP_OPT,
    OP_SEQ,
    ParseProgram,
    called_rules,
)

_MAXSTEPS = sys.maxsize
_EOF_SET = frozenset((EOF,))


def closure_fingerprint(source: str) -> str | None:
    """Configuration fingerprint embedded in a closure artifact.

    Closure artifacts reuse the generated-source convention (a
    ``_FINGERPRINT = "…"`` line near the top), so the registry can
    validate staleness with the same cheap line scan.
    """
    return source_fingerprint(source)


# -- shared runtime ----------------------------------------------------------
#
# Compiled rule functions receive two arguments: ``s`` (a RunState: the
# parse registers) and ``out`` (the parent's children list).  Keeping
# the registers on one slotted object makes every compiled function a
# closure over nothing — the artifact namespace holds only constants
# and other functions, so it is trivially shareable across threads.


class _Fail(Exception):
    """Backtracking signal inside compiled code (twin of ``_Failure``)."""

    __slots__ = ("index", "expected")

    def __init__(self, index: int, expected: frozenset[str]) -> None:
        self.index = index
        self.expected = expected


class RunState:
    """Mutable per-parse registers threaded through compiled rules.

    ``limit`` is the next step count at which ``_check`` must run: with
    no budget and no deadline it is never reached; otherwise it is
    re-armed every :data:`~repro.parsing.parser.DEADLINE_CHECK_INTERVAL`
    steps (and clamped to ``budget + 1`` so the budget trip is exact).
    """

    __slots__ = (
        "tokens", "i", "fi", "fexp", "steps", "limit",
        "budget", "deadline", "depth", "max_depth", "cov",
    )

    def __init__(
        self,
        tokens: list[Token],
        budget: int | None = None,
        deadline: Any = None,
        max_depth: int = 200,
        steps: int = 0,
        cov: Any = None,
    ) -> None:
        self.tokens = tokens
        self.i = 0
        self.fi = 0
        self.fexp: set[str] = set()
        self.steps = steps
        self.budget = budget
        self.deadline = deadline
        self.depth = 0
        self.max_depth = max_depth
        self.cov = cov
        if budget is None and deadline is None:
            self.limit = _MAXSTEPS
        elif budget is None:
            self.limit = steps + DEADLINE_CHECK_INTERVAL
        else:
            self.limit = min(budget + 1, steps + DEADLINE_CHECK_INTERVAL)


def _fail(s: RunState, expected: frozenset[str]) -> None:
    """Record the furthest failure point and unwind (never returns)."""
    i = s.i
    if i > s.fi:
        s.fi = i
        s.fexp = set(expected)
    elif i == s.fi:
        s.fexp |= expected
    raise _Fail(i, expected)


def _check(s: RunState, st: int) -> None:
    """Budget/deadline check, re-arming ``s.limit`` (messages match the
    interpreter's ``_budget_exceeded`` / ``_deadline_exceeded``)."""
    b = s.budget
    if b is not None and st > b:
        token = s.tokens[s.i]
        raise ParseBudgetExceeded(
            f"parse budget of {b} steps exceeded "
            f"(pathological backtracking near {token.type})",
            line=token.line,
            column=token.column,
            steps=st,
        )
    deadline = s.deadline
    if deadline is not None and deadline.expired():
        token = s.tokens[min(s.i, len(s.tokens) - 1)]
        raise ParseDeadlineExceeded(
            f"parse aborted: request deadline expired after {st} "
            f"steps (near {token.type})",
            line=token.line,
            column=token.column,
            steps=st,
        )
    limit = st + DEADLINE_CHECK_INTERVAL
    if b is not None and b + 1 < limit:
        limit = b + 1
    s.limit = limit


def _depth_fail(s: RunState) -> None:
    """Depth-limit trip (message matches the interpreter's)."""
    token = s.tokens[s.i]
    s.depth = 0
    raise ParseBudgetExceeded(
        f"parser recursion depth limit of {s.max_depth} exceeded "
        f"(input nested too deeply near {token.type})",
        line=token.line,
        column=token.column,
        steps=s.steps,
    )


# -- source generation -------------------------------------------------------


def _literal(value: Any) -> str:
    """A deterministic source literal for an emitted constant."""
    if isinstance(value, frozenset):
        if not value:
            return "frozenset()"
        items = ", ".join(repr(item) for item in sorted(value))
        if len(value) == 1:
            items += ","
        return f"frozenset(({items}))"
    if isinstance(value, dict):
        items = ", ".join(f"{key!r}: {value[key]}" for key in sorted(value))
        return "{" + items + "}"
    raise TypeError(f"unsupported constant: {value!r}")


class _SourceBuilder:
    """Lower a ParseProgram's instruction tuples to Python statements.

    With ``coverage_map`` set, counter bumps are compiled in at exactly
    the points where the interpreter's ``_exec_cov`` commits to a
    decision, using compile-time slot indices (the map's numbering is
    deterministic for a given program, so instrumented artifacts from
    any map over the same program agree).

    Two code-size pressure valves keep CPython happy ("too many
    statically nested blocks" trips at 20): deeply indented non-trivial
    instructions are outlined to helper functions, and long
    backtracking candidate lists become a loop over a function tuple
    instead of a nested try-chain.
    """

    def __init__(
        self, program: ParseProgram, coverage_map: Any = None
    ) -> None:
        self.program = program
        self.cov = coverage_map
        self.lines: list[str] = []
        self.consts: dict[Any, str] = {}
        self.const_defs: list[tuple[str, Any]] = []
        self.tmp = 0
        self.helpers: list[tuple[str, Any]] = []
        self._hn = 0
        #: (tuple name, candidate fn names, alt slots or None)
        self.fn_tuples: list[tuple[str, tuple[str, ...], tuple[int, ...] | None]] = []

    def const(self, prefix: str, value: Any, key: Any = None) -> str:
        key = (prefix, key if key is not None else value)
        name = self.consts.get(key)
        if name is None:
            name = f"_{prefix}{len(self.const_defs)}"
            self.consts[key] = name
            self.const_defs.append((name, value))
        return name

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- instruction lowering ------------------------------------------------

    def emit_match_run(
        self, pairs: list[tuple[str, frozenset[str]]], ind: int
    ) -> None:
        """One or more consecutive MATCHes as straight-line code."""
        w = self.w
        if len(pairs) == 1:
            name, expected = pairs[0]
            e = self.const("e", expected)
            w(ind, "t = tk[s.i]")
            w(ind, f"if t.type != {name!r}:")
            w(ind + 1, f"_fail(s, {e})")
            w(ind, "ch.append(t)")
            w(ind, "s.i += 1")
            return
        w(ind, "i = s.i")
        for k, (name, expected) in enumerate(pairs):
            e = self.const("e", expected)
            idx = "i" if k == 0 else f"i + {k}"
            w(ind, f"t = tk[{idx}]")
            w(ind, f"if t.type != {name!r}:")
            if k:
                # write the cursor back so the failure points mid-run
                w(ind + 1, f"s.i = i + {k}")
            w(ind + 1, f"_fail(s, {e})")
            w(ind, "ch.append(t)")
        w(ind, f"s.i = i + {len(pairs)}")

    def emit_seq(self, items: tuple, ind: int) -> None:
        pending: list[tuple[str, frozenset[str]]] = []
        for item in items:
            if item[0] == OP_MATCH:
                pending.append((item[1], item[2]))
                continue
            if pending:
                self.emit_match_run(pending, ind)
                pending = []
            self.emit(item, ind)
        if pending:
            self.emit_match_run(pending, ind)

    def emit_choice(self, instr: tuple, ind: int) -> None:
        w = self.w
        dispatch, default, expected = instr[1], instr[2], instr[3]
        # group lookaheads that share an identical candidate sequence
        # into one branch, so the emitted dispatch dict maps terminal ->
        # small branch int instead of terminal -> code copy
        seq_ids: dict[tuple[int, ...], int] = {}
        branches: list[tuple] = []
        table: dict[str, int] = {}
        for term, cands in dispatch.items():
            key = tuple(id(b) for b in cands)
            bi = seq_ids.get(key)
            if bi is None:
                bi = len(branches)
                seq_ids[key] = bi
                branches.append(cands)
            table[term] = bi
        default_bi = -1
        if default:
            key = tuple(id(b) for b in default)
            maybe = seq_ids.get(key)
            if maybe is None:
                default_bi = len(branches)
                seq_ids[key] = default_bi
                branches.append(default)
            else:
                default_bi = maybe
        if len(branches) == 1 and default_bi == 0:
            # every lookahead and the default agree: unconditional
            self.emit_candidates(branches[0], ind)
            return
        d = self.const("d", table, key=(id(instr), "disp"))
        e = self.const("e", expected)
        w(ind, f"_b = {d}.get(tk[s.i].type, {default_bi})")
        for bi, cands in enumerate(branches):
            kw = "if" if bi == 0 else "elif"
            w(ind, f"{kw} _b == {bi}:")
            self.emit_candidates(cands, ind + 1)
        w(ind, "else:")
        w(ind + 1, f"_fail(s, {e})")

    def emit_candidates(self, cands: tuple, ind: int) -> None:
        """Backtracking candidate list, restoring state between tries."""
        w = self.w
        cov = self.cov
        if len(cands) == 1:
            self.emit(cands[0], ind)
            if cov is not None:
                slot = cov.slot_of_block[id(cands[0])]
                w(ind, f"s.cov.alts[{slot}] += 1")
            return
        self.tmp += 1
        iv, nv = f"_i{self.tmp}", f"_n{self.tmp}"
        w(ind, f"{iv} = s.i")
        w(ind, f"{nv} = len(ch)")
        if len(cands) <= 3 and ind < 8:
            def rec(k: int, ind: int) -> None:
                if k == len(cands) - 1:
                    self.emit(cands[k], ind)
                    if cov is not None:
                        slot = cov.slot_of_block[id(cands[k])]
                        w(ind, f"s.cov.alts[{slot}] += 1")
                    return
                w(ind, "try:")
                self.emit(cands[k], ind + 1)
                if cov is not None:
                    slot = cov.slot_of_block[id(cands[k])]
                    w(ind + 1, f"s.cov.alts[{slot}] += 1")
                w(ind, "except _Fail:")
                w(ind + 1, f"s.i = {iv}")
                w(ind + 1, f"del ch[{nv}:]")
                rec(k + 1, ind + 1)

            rec(0, ind)
        else:
            names = tuple(self.instr_fn(cand) for cand in cands)
            slots = None
            if cov is not None:
                slots = tuple(cov.slot_of_block[id(cand)] for cand in cands)
            tname = f"_t{len(self.fn_tuples)}"
            self.fn_tuples.append((tname, names, slots))
            fv, lv = f"_fn{self.tmp}", f"_lf{self.tmp}"
            w(ind, f"{lv} = None")
            if cov is None:
                w(ind, f"for {fv} in {tname}:")
                w(ind + 1, "try:")
                w(ind + 2, f"{fv}(s, ch)")
                w(ind + 2, "break")
                w(ind + 1, "except _Fail as _f:")
                w(ind + 2, f"{lv} = _f")
                w(ind + 2, f"s.i = {iv}")
                w(ind + 2, f"del ch[{nv}:]")
            else:
                sv = f"_sl{self.tmp}"
                w(ind, f"for {fv}, {sv} in {tname}:")
                w(ind + 1, "try:")
                w(ind + 2, f"{fv}(s, ch)")
                w(ind + 1, "except _Fail as _f:")
                w(ind + 2, f"{lv} = _f")
                w(ind + 2, f"s.i = {iv}")
                w(ind + 2, f"del ch[{nv}:]")
                w(ind + 1, "else:")
                w(ind + 2, f"s.cov.alts[{sv}] += 1")
                w(ind + 2, "break")
            w(ind, "else:")
            w(ind + 1, f"raise {lv}")
        self.tmp -= 1

    def instr_fn(self, instr: tuple) -> str:
        """A function name executing ``instr`` (rule fn or new helper)."""
        if instr[0] == OP_CALL:
            return f"_r{instr[1]}"
        self._hn += 1
        name = f"_h{self._hn}"
        self.helpers.append((name, instr))
        return name

    def emit(self, instr: tuple, ind: int) -> None:
        if ind >= 6 and instr[0] != OP_MATCH and instr[0] != OP_CALL:
            # outline before CPython's 20-block nesting limit bites
            self._hn += 1
            name = f"_h{self._hn}"
            self.w(ind, f"{name}(s, ch)")
            self.helpers.append((name, instr))
            return
        w = self.w
        cov = self.cov
        op = instr[0]
        if op == OP_MATCH:
            self.emit_match_run([(instr[1], instr[2])], ind)
        elif op == OP_CALL:
            w(ind, f"_r{instr[1]}(s, ch)")
        elif op == OP_SEQ:
            self.emit_seq(instr[1], ind)
        elif op == OP_CHOICE:
            self.emit_choice(instr, ind)
        elif op == OP_OPT:
            inner, first = instr[1], instr[2]
            point = None if cov is None else cov.decision_of_instr[id(instr)]
            if inner[0] == OP_MATCH and len(first) == 1:
                # optional single token: no backtracking state needed
                w(ind, "t = tk[s.i]")
                w(ind, f"if t.type == {inner[1]!r}:")
                w(ind + 1, "ch.append(t)")
                w(ind + 1, "s.i += 1")
                if point is not None:
                    w(ind + 1, f"s.cov.taken[{point}] += 1")
                    w(ind, "else:")
                    w(ind + 1, f"s.cov.skipped[{point}] += 1")
                return
            f = self.const("f", first)
            w(ind, f"if tk[s.i].type in {f}:")
            self.tmp += 1
            iv, nv = f"_i{self.tmp}", f"_n{self.tmp}"
            w(ind + 1, f"{iv} = s.i")
            w(ind + 1, f"{nv} = len(ch)")
            w(ind + 1, "try:")
            self.emit(inner, ind + 2)
            w(ind + 1, "except _Fail:")
            w(ind + 2, f"s.i = {iv}")
            w(ind + 2, f"del ch[{nv}:]")
            if point is not None:
                w(ind + 2, f"s.cov.skipped[{point}] += 1")
                w(ind + 1, "else:")
                w(ind + 2, f"s.cov.taken[{point}] += 1")
                w(ind, "else:")
                w(ind + 1, f"s.cov.skipped[{point}] += 1")
            self.tmp -= 1
        elif op == OP_LOOP:
            inner, first, minimum = instr[1], instr[2], instr[3]
            point = None if cov is None else cov.decision_of_instr[id(instr)]
            f = self.const("f", first)
            self.tmp += 1
            iv, nv, cv = f"_i{self.tmp}", f"_n{self.tmp}", f"_c{self.tmp}"
            counted = bool(minimum) or point is not None
            if counted:
                w(ind, f"{cv} = 0")
            w(ind, f"while tk[s.i].type in {f}:")
            w(ind + 1, f"{iv} = s.i")
            w(ind + 1, f"{nv} = len(ch)")
            w(ind + 1, "try:")
            self.emit(inner, ind + 2)
            w(ind + 1, "except _Fail:")
            w(ind + 2, f"s.i = {iv}")
            w(ind + 2, f"del ch[{nv}:]")
            w(ind + 2, "break")
            w(ind + 1, f"if s.i == {iv}:")
            w(ind + 2, "break")
            if counted:
                w(ind + 1, f"{cv} += 1")
            if minimum:
                w(ind, f"if {cv} < {minimum}:")
                w(ind + 1, f"_fail(s, {f})")
            if point is not None:
                w(ind, f"if {cv} > {minimum}:")
                w(ind + 1, f"s.cov.taken[{point}] += 1")
                w(ind, "else:")
                w(ind + 1, f"s.cov.skipped[{point}] += 1")
            self.tmp -= 1
        else:  # OP_SEPLOOP: (op, inner, sep, first, sep_first, min)
            inner, sep, first, sep_first, minimum = instr[1:6]
            point = None if cov is None else cov.decision_of_instr[id(instr)]
            body_ind = ind
            if minimum == 0:
                f = self.const("f", first)
                w(ind, f"if tk[s.i].type in {f}:")
                body_ind = ind + 1
            self.emit(inner, body_ind)
            self.tmp += 1
            iv, nv, cv = f"_i{self.tmp}", f"_n{self.tmp}", f"_c{self.tmp}"
            if point is not None:
                w(body_ind, f"{cv} = 1")
            single_sep = sep[0] == OP_MATCH and len(sep_first) == 1
            if single_sep:
                w(body_ind, f"while tk[s.i].type == {sep[1]!r}:")
            else:
                sf = self.const("f", sep_first)
                w(body_ind, f"while tk[s.i].type in {sf}:")
            w(body_ind + 1, f"{iv} = s.i")
            w(body_ind + 1, f"{nv} = len(ch)")
            w(body_ind + 1, "try:")
            if single_sep:
                w(body_ind + 2, f"ch.append(tk[{iv}])")
                w(body_ind + 2, f"s.i = {iv} + 1")
            else:
                self.emit(sep, body_ind + 2)
            self.emit(inner, body_ind + 2)
            w(body_ind + 1, "except _Fail:")
            w(body_ind + 2, f"s.i = {iv}")
            w(body_ind + 2, f"del ch[{nv}:]")
            w(body_ind + 2, "break")
            if point is not None:
                w(body_ind + 1, f"{cv} += 1")
                w(body_ind, f"if {cv} >= 2:")
                w(body_ind + 1, f"s.cov.taken[{point}] += 1")
                w(body_ind, "else:")
                w(body_ind + 1, f"s.cov.skipped[{point}] += 1")
                if minimum == 0:
                    w(ind, "else:")
                    w(ind + 1, f"s.cov.skipped[{point}] += 1")
            self.tmp -= 1

    def emit_rule(self, rid: int) -> None:
        w = self.w
        body = self.program.code[rid]
        rname = self.program.rule_names[rid]
        leaf = not called_rules(body)
        w(0, f"def _r{rid}(s, out):")
        if not leaf:
            w(1, "st = s.steps + 1")
            w(1, "s.steps = st")
            w(1, "if st >= s.limit:")
            w(2, "_check(s, st)")
        if self.cov is not None:
            # mirrors _call_rule_cov: entry counted before the depth check
            w(1, f"s.cov.rules[{rid}] += 1")
        if leaf:
            # leaf rule (no nested CALLs): nothing below can observe the
            # depth register, and fuel keeps ticking at every enclosing
            # non-leaf call — pathological backtracking and runaway
            # recursion always go through those — so both the depth
            # bookkeeping and the step tick are dead weight on the
            # hottest rules (identifiers, literals)
            w(1, "if s.depth >= s.max_depth:")
            w(2, "_depth_fail(s)")
            w(1, "tk = s.tokens")
            w(1, "node = _new(_Node)")
            w(1, f"node.name = {rname!r}")
            w(1, "node.children = ch = []")
            self.emit(body, 1)
            w(1, "out.append(node)")
            w(0, "")
            return
        w(1, "d = s.depth")
        w(1, "if d >= s.max_depth:")
        w(2, "_depth_fail(s)")
        w(1, "s.depth = d + 1")
        w(1, "tk = s.tokens")
        w(1, "node = _new(_Node)")
        w(1, f"node.name = {rname!r}")
        w(1, "node.children = ch = []")
        w(1, "try:")
        self.emit(body, 2)
        w(1, "finally:")
        w(2, "s.depth = d")
        w(1, "out.append(node)")
        w(0, "")

    def build(self) -> str:
        for rid in range(len(self.program.rule_names)):
            self.emit_rule(rid)
        while self.helpers:
            name, instr = self.helpers.pop()
            self.w(0, f"def {name}(s, ch):")
            self.w(1, "tk = s.tokens")
            saved = self.tmp
            self.tmp = 0
            self.emit(instr, 1)
            self.tmp = saved
            self.w(0, "")
        return "\n".join(self.lines)


def generate_closure_source(
    program: ParseProgram,
    fingerprint: str | None = None,
    coverage_map: Any = None,
) -> str:
    """The self-contained artifact module for one parse program.

    The text exec's into per-rule functions (``RULES``); with
    ``fingerprint`` it carries the shared ``_FINGERPRINT`` constant so
    the registry's staleness scan works unchanged.  With
    ``coverage_map``, instrumented functions are generated instead
    (those are never written to disk — they are rebuilt on demand).
    """
    builder = _SourceBuilder(program, coverage_map)
    body = builder.build()
    n_rules = len(program.rule_names)
    head = [
        f'"""Closure-compiled parser for {program.grammar_name!r} '
        f"({n_rules} rules).",
        "",
        "Generated by repro.parsing.closures; do not edit.",
        '"""',
    ]
    if fingerprint is not None:
        head += ["", f'{FINGERPRINT_CONSTANT} = "{fingerprint}"']
    head += [
        "",
        "from repro.parsing.closures import _Fail, _check, _depth_fail, _fail",
        "from repro.parsing.tree import Node as _Node",
        "",
        "_new = object.__new__",
        "",
    ]
    for name, value in builder.const_defs:
        head.append(f"{name} = {_literal(value)}")
    head.append("")
    parts = ["\n".join(head), body]
    tuple_lines = []
    for tname, names, slots in builder.fn_tuples:
        if slots is None:
            items = ", ".join(names)
        else:
            items = ", ".join(
                f"({name}, {slot})" for name, slot in zip(names, slots)
            )
        if len(names) == 1:
            items += ","
        tuple_lines.append(f"{tname} = ({items})")
    rules = ", ".join(f"_r{rid}" for rid in range(n_rules))
    if n_rules == 1:
        rules += ","
    tuple_lines += ["", f"RULES = ({rules})", ""]
    parts.append("\n".join(tuple_lines))
    return "\n".join(parts)


# -- the compiled artifact ---------------------------------------------------


class ClosureProgram:
    """A :class:`ParseProgram` exec-compiled to per-rule functions.

    Immutable once built and safe to share across threads (the rule
    functions close over nothing; all parse state rides on the
    :class:`RunState` argument).  ``instrumented()`` compiles the
    coverage-counting twin on first use, keyed to the program's
    deterministic :class:`~repro.parsing.coverage.CoverageMap` layout.
    """

    __slots__ = ("program", "source", "rule_fns", "_lock", "_instrumented")

    def __init__(self, program: ParseProgram, source: str | None = None) -> None:
        if source is None:
            source = generate_closure_source(program, program.fingerprint)
        namespace: dict[str, Any] = {}
        exec(
            compile(source, f"<closures:{program.grammar_name}>", "exec"),
            namespace,
        )
        rules = namespace.get("RULES")
        if not isinstance(rules, tuple) or len(rules) != len(program.rule_names):
            raise ValueError(
                "closure artifact does not match the parse program "
                f"({program.grammar_name!r}: expected "
                f"{len(program.rule_names)} rules)"
            )
        self.program = program
        self.source = source
        self.rule_fns: tuple[Callable[[RunState, list], None], ...] = rules
        self._lock = threading.Lock()
        self._instrumented: tuple | None = None

    def instrumented(self, coverage_map: Any) -> tuple:
        """Rule functions with coverage bumps compiled in (lazy, shared)."""
        with self._lock:
            if self._instrumented is None:
                source = generate_closure_source(
                    self.program, coverage_map=coverage_map
                )
                namespace: dict[str, Any] = {}
                exec(
                    compile(
                        source,
                        f"<closures-cov:{self.program.grammar_name}>",
                        "exec",
                    ),
                    namespace,
                )
                self._instrumented = namespace["RULES"]
            return self._instrumented

    def __repr__(self) -> str:
        return (
            f"<ClosureProgram {self.program.grammar_name!r}: "
            f"{len(self.rule_fns)} rules, {len(self.source)} chars>"
        )


def compile_closure_program(
    program: ParseProgram, fingerprint: str | None = None
) -> ClosureProgram:
    """Compile ``program`` to threaded code (one function per rule)."""
    return ClosureProgram(
        program,
        generate_closure_source(
            program, fingerprint if fingerprint is not None else program.fingerprint
        ),
    )


# -- compiled scanner --------------------------------------------------------


class CompiledScanner:
    """Drop-in scanner facade with a tighter tokenize loop.

    Wraps a :class:`~repro.lexer.scanner.Scanner` and reuses its master
    pattern, keyword table, and skip set, but builds tokens with
    ``object.__new__`` + direct slot stores instead of the (frozen)
    dataclass constructor.  Any input the fast loop cannot finish — an
    unmatchable character, a zero-width match — falls back to the
    wrapped scanner, which owns every error message and the recovery
    path, so diagnostics are byte-identical to the interpreter's.
    """

    __slots__ = ("_inner", "_finditer", "_keywords", "_skip", "_id_rules")

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self._finditer = inner._master.finditer
        self._keywords = inner._keywords
        self._skip = inner._skip_names
        self._id_rules = inner.identifier_rules

    def scan(self, text: str) -> list[Token]:
        tokens = self._fast_scan(text)
        if tokens is None:
            return self._inner.scan(text)  # precise ScanError
        return tokens

    def scan_with_diagnostics(self, text: str) -> tuple[list[Token], list]:
        tokens = self._fast_scan(text)
        if tokens is None:
            return self._inner.scan_with_diagnostics(text)
        return tokens, []

    def _fast_scan(self, text: str) -> list[Token] | None:
        kw_get = self._keywords.get
        skip = self._skip
        id_rules = self._id_rules
        new = object.__new__
        store = object.__setattr__
        out: list[Token] = []
        append = out.append
        pos = 0
        line = 1
        col = 1
        for m in self._finditer(text):
            if m.start() != pos:
                return None  # unmatchable character: take the slow path
            end = m.end()
            if end == pos:
                return None
            name = m.lastgroup or ""
            lexeme = text[pos:end]
            if name not in skip:
                if name in id_rules:
                    ttype = kw_get(lexeme.upper(), name)
                else:
                    ttype = name
                token = new(Token)
                store(token, "type", ttype)
                store(token, "text", lexeme)
                store(token, "line", line)
                store(token, "column", col)
                store(token, "offset", pos)
                append(token)
            if "\n" in lexeme:
                line += lexeme.count("\n")
                col = len(lexeme) - lexeme.rfind("\n")
            else:
                col += end - pos
            pos = end
        if pos != len(text):
            return None  # trailing unmatchable tail: slow path
        append(eof_token(line, col, pos))
        return out

    def __getattr__(self, name: str) -> Any:
        # everything else (tokens(), token_set, …) is the wrapped scanner's
        return getattr(self._inner, name)


# -- the parser facade -------------------------------------------------------


class ClosureParser(Parser):
    """A :class:`Parser` whose rule calls run closure-compiled code.

    Only ``_call_rule`` is overridden: ``parse_tokens`` therefore runs
    the *entire* parse compiled (one bridge per parse), while
    ``parse_with_diagnostics`` interprets just the top-level start-rule
    body — a handful of instructions per recovery segment — and enters
    compiled code at every nested rule call, keeping panic-mode
    recovery, diagnostics, and hint semantics literally inherited.
    """

    def __init__(
        self,
        grammar: Any,
        closure_program: ClosureProgram,
        scanner: Any = None,
        strict: bool = False,
        max_steps: int | None = None,
        hint_provider: Any = None,
        max_depth: int | None = None,
        analysis: Any = None,
        table: Any = None,
    ) -> None:
        kwargs: dict[str, Any] = {}
        if max_depth is not None:
            kwargs["max_depth"] = max_depth
        super().__init__(
            grammar,
            scanner=scanner,
            strict=strict,
            max_steps=max_steps,
            hint_provider=hint_provider,
            analysis=analysis,
            table=table,
            program=closure_program.program,
            **kwargs,
        )
        self.closure = closure_program
        self._rule_fns = closure_program.rule_fns
        self._instrumented_fns: tuple | None = None
        if not isinstance(self.scanner, CompiledScanner):
            self.scanner = CompiledScanner(self.scanner)

    # -- compiled fast path -------------------------------------------------

    def parse_tokens(
        self,
        tokens: list[Token],
        start: str | None = None,
        max_steps: int | None = None,
        deadline: Any = None,
    ) -> Any:
        """Parse a token list entirely in compiled code.

        Semantics are :meth:`Parser.parse_tokens`'s exactly (budget
        defaulting, input-scaled deadline fuel, trailing-input EOF
        failure, ``_build_error`` on reject); the lean path simply skips
        the per-parse field resets the bridge would otherwise pay.
        """
        rule_id = self._start_rule_id(start)
        budget = max_steps if max_steps is not None else self.max_steps
        if deadline is not None and budget is None:
            budget = DEFAULT_STEPS_PER_TOKEN * len(tokens) + DEFAULT_STEP_FLOOR
        s = RunState(
            tokens, budget=budget, deadline=deadline, max_depth=self.max_depth
        )
        out: list = []
        try:
            self._rule_fns[rule_id](s, out)
            if not tokens[s.i].is_eof:
                _fail(s, _EOF_SET)
        except _Fail:
            # _build_error reads the furthest point off the parser fields
            self._tokens = tokens
            self._index = s.i
            self._furthest_index = s.fi
            self._furthest_expected = s.fexp
            raise self._build_error() from None
        return out[0]

    # -- compiled bridge ----------------------------------------------------

    def _call_rule(self, rule_id: int):
        s = RunState(
            self._tokens,
            budget=self._budget,
            deadline=self._deadline,
            max_depth=self.max_depth,
            steps=self._steps,
        )
        s.i = self._index
        s.fi = self._furthest_index
        s.fexp = self._furthest_expected
        s.depth = self._depth
        out: list = []
        try:
            self._rule_fns[rule_id](s, out)
        except _Fail as failure:
            raise _Failure(failure.index, failure.expected) from None
        finally:
            # sync back on success *and* failure: the interpreter's
            # CHOICE/OPT/LOOP handlers above this frame restore the
            # cursor themselves and _build_error reads the furthest point
            self._index = s.i
            self._furthest_index = s.fi
            self._furthest_expected = s.fexp
            self._steps = s.steps
        return out[0]

    # -- coverage instrumentation -------------------------------------------

    def enable_coverage(self, collector=None):
        """Flip to the instrumented compiled functions (see ``Parser``)."""
        from .coverage import CoverageCollector, CoverageMap

        if collector is None:
            collector = CoverageCollector(CoverageMap(self.program))
        elif collector.map.program is not self.program:
            raise ValueError(
                "coverage collector is keyed to a different parse program "
                f"({collector.map.program.grammar_name!r})"
            )
        self._instrumented_fns = self.closure.instrumented(collector.map)
        self._coverage = collector
        self.__class__ = _InstrumentedClosureParser
        return collector

    def disable_coverage(self):
        collector = self._coverage
        self._coverage = None
        self.__class__ = ClosureParser
        return collector


class _InstrumentedClosureParser(ClosureParser):
    """Coverage-counting flavor of :class:`ClosureParser`.

    Never instantiated directly — ``enable_coverage`` flips the class.
    The top-level diagnostics body interprets through ``_exec_cov``
    (whose OP_CALL delegation lands in the bridge below), and the
    bridge hands the collector to the instrumented compiled functions,
    whose rule prologues count entries themselves.
    """

    _exec = Parser._exec_cov
    # the lean fast path binds the *plain* rule functions; coverage runs
    # must go through the bridge below, which hands over the collector
    parse_tokens = Parser.parse_tokens

    def _call_rule(self, rule_id: int):
        s = RunState(
            self._tokens,
            budget=self._budget,
            deadline=self._deadline,
            max_depth=self.max_depth,
            steps=self._steps,
            cov=self._coverage,
        )
        s.i = self._index
        s.fi = self._furthest_index
        s.fexp = self._furthest_expected
        s.depth = self._depth
        out: list = []
        fns = self._instrumented_fns
        assert fns is not None
        try:
            fns[rule_id](s, out)
        except _Fail as failure:
            raise _Failure(failure.index, failure.expected) from None
        finally:
            self._index = s.i
            self._furthest_index = s.fi
            self._furthest_expected = s.fexp
            self._steps = s.steps
        return out[0]
