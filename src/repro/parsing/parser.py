"""Predictive recursive-descent parser interpreter.

Given a composed grammar, :class:`Parser` parses token streams into
concrete parse trees.  Decisions are FIRST-directed (LL(1)); where the
grammar is not LL(1) the parser falls back to ordered backtracking among
the candidate alternatives (disable with ``strict=True``, which instead
raises :class:`~repro.errors.LLConflictError` at construction time — the
equivalent of ANTLR refusing a grammar).

Error reporting keeps the *furthest* failure position and the union of
expected terminals there, which is what a user of a tailored dialect needs
to see ("expected WHERE or end of input").
"""

from __future__ import annotations

from ..errors import LLConflictError, ParseError
from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar
from ..grammar.validate import validate
from ..lexer.scanner import Scanner
from ..lexer.token import EOF, Token
from .first_follow import GrammarAnalysis
from .ll1 import LLTable
from .tree import Node


class _Failure(Exception):
    """Internal backtracking signal; never escapes :meth:`Parser.parse`."""

    __slots__ = ("index", "expected")

    def __init__(self, index: int, expected: frozenset[str]) -> None:
        self.index = index
        self.expected = expected


class Parser:
    """A ready-to-use parser for one composed grammar.

    Args:
        grammar: A *closed* grammar (validation must pass).
        scanner: Optional custom scanner; defaults to one built from the
            grammar's token set.
        strict: Refuse non-LL(1) grammars instead of backtracking.
    """

    def __init__(
        self,
        grammar: Grammar,
        scanner: Scanner | None = None,
        strict: bool = False,
    ) -> None:
        validate(grammar).raise_if_failed()
        self.grammar = grammar
        self.scanner = scanner if scanner is not None else Scanner(grammar.tokens)
        self.analysis = GrammarAnalysis(grammar)
        self.table = LLTable(grammar, self.analysis)
        self.strict = strict
        if strict and self.table.conflicts:
            raise LLConflictError(
                f"grammar {grammar.name!r} is not LL(1): "
                + "; ".join(str(c) for c in self.table.conflicts[:5]),
                conflicts=self.table.conflicts,
            )
        # parse state (reset per parse call)
        self._tokens: list[Token] = []
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected: set[str] = set()

    # -- public API -----------------------------------------------------------

    def parse(self, text: str, start: str | None = None) -> Node:
        """Parse source text into a parse tree rooted at the start rule.

        Raises:
            ParseError: with position and expected-terminal information.
            ScanError: when tokenization fails.
        """
        return self.parse_tokens(self.scanner.scan(text), start=start)

    def parse_tokens(self, tokens: list[Token], start: str | None = None) -> Node:
        """Parse an already-scanned token list (must end with EOF)."""
        start_rule = start if start is not None else self.grammar.start
        if start_rule is None:
            raise ParseError("grammar has no start rule")
        self._tokens = tokens
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected = set()
        try:
            node = self._parse_rule(start_rule)
            if not self._current.is_eof:
                self._fail(frozenset((EOF,)))
            return node
        except _Failure:
            raise self._build_error() from None

    def accepts(self, text: str, start: str | None = None) -> bool:
        """True when the text parses; scan and parse errors both count as no."""
        from ..errors import ScanError

        try:
            self.parse(text, start=start)
        except (ParseError, ScanError):
            return False
        return True

    # -- parse machinery --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _fail(self, expected: frozenset[str]) -> None:
        if self._index > self._furthest_index:
            self._furthest_index = self._index
            self._furthest_expected = set(expected)
        elif self._index == self._furthest_index:
            self._furthest_expected |= expected
        raise _Failure(self._index, expected)

    def _build_error(self) -> ParseError:
        token = self._tokens[min(self._furthest_index, len(self._tokens) - 1)]
        found = "end of input" if token.is_eof else repr(token.text)
        expected = ", ".join(sorted(self._furthest_expected))
        return ParseError(
            f"syntax error: found {found}, expected one of: {expected}",
            line=token.line,
            column=token.column,
            expected=frozenset(self._furthest_expected),
            found=token.type,
        )

    def _parse_rule(self, name: str) -> Node:
        rule = self.grammar.rule(name)
        node = Node(name)
        self._parse_alternatives(rule.alternatives, node.children, rule_name=name)
        return node

    def _parse_alternatives(
        self,
        alternatives: list[Element] | tuple[Element, ...],
        children: list,
        rule_name: str | None = None,
    ) -> None:
        lookahead = self._current.type
        viable: list[Element] = []
        nullable_fallbacks: list[Element] = []
        expected: set[str] = set()
        for alt in alternatives:
            first = self.analysis.first_of(alt)
            expected |= first
            if lookahead in first:
                viable.append(alt)
            elif self.analysis.nullable_of(alt):
                nullable_fallbacks.append(alt)

        # Token-consuming candidates first (in declaration order), then
        # epsilon-deriving ones: epsilon must only win when nothing else can.
        candidates = viable + nullable_fallbacks
        if not candidates:
            self._fail(frozenset(expected))

        if len(candidates) == 1:
            self._parse_element(candidates[0], children)
            return

        saved_index = self._index
        saved_len = len(children)
        last_failure: _Failure | None = None
        for alt in candidates:
            try:
                self._parse_element(alt, children)
                return
            except _Failure as failure:
                last_failure = failure
                self._index = saved_index
                del children[saved_len:]
        assert last_failure is not None
        raise last_failure

    def _parse_element(self, element: Element, children: list) -> None:
        if isinstance(element, Tok):
            token = self._current
            if token.type != element.name:
                self._fail(frozenset((element.name,)))
            children.append(token)
            self._index += 1
            return
        if isinstance(element, Ref):
            children.append(self._parse_rule(element.name))
            return
        if isinstance(element, Seq):
            for item in element.items:
                self._parse_element(item, children)
            return
        if isinstance(element, Opt):
            self._parse_optional(element.inner, children)
            return
        if isinstance(element, Rep):
            self._parse_repetition(element, children)
            return
        if isinstance(element, Choice):
            self._parse_alternatives(element.alternatives, children)
            return
        raise TypeError(f"unknown element: {element!r}")

    def _parse_optional(self, inner: Element, children: list) -> None:
        first = self.analysis.first_of(inner)
        if self._current.type not in first:
            return
        saved_index = self._index
        saved_len = len(children)
        try:
            self._parse_element(inner, children)
        except _Failure:
            # the optional content looked plausible but did not parse;
            # treat as absent and let the continuation decide
            self._index = saved_index
            del children[saved_len:]

    def _parse_repetition(self, rep: Rep, children: list) -> None:
        first = self.analysis.first_of(rep.inner)
        if rep.separator is None:
            count = 0
            while self._current.type in first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._parse_element(rep.inner, children)
                except _Failure:
                    self._index = saved_index
                    del children[saved_len:]
                    break
                if self._index == saved_index:
                    break  # inner matched empty input; avoid infinite loop
                count += 1
            if count < rep.min:
                self._fail(first)
            return

        # separated list: item (SEP item)*
        if rep.min == 0 and self._current.type not in first:
            return
        self._parse_element(rep.inner, children)
        sep_first = self.analysis.first_of(rep.separator)
        while self._current.type in sep_first:
            saved_index = self._index
            saved_len = len(children)
            try:
                self._parse_element(rep.separator, children)
                self._parse_element(rep.inner, children)
            except _Failure:
                # the separator belonged to the surrounding context
                self._index = saved_index
                del children[saved_len:]
                break
