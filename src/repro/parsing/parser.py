"""Predictive recursive-descent parser: a driver over the parse-program IR.

Given a composed grammar, :class:`Parser` parses token streams into
concrete parse trees.  The grammar is first lowered (once, at
construction) into a flat :class:`~repro.parsing.program.ParseProgram`;
parsing is then a tight interpretation loop over tuple-encoded
instructions with precomputed FIRST-set dispatch tables — no ``Element``
pattern-matching or FIRST-set recomputation on the hot path.

Decisions are FIRST-directed (LL(1)); where the grammar is not LL(1) the
driver falls back to ordered backtracking among the candidate blocks the
dispatch table hands it (disable with ``strict=True``, which instead
raises :class:`~repro.errors.LLConflictError` at construction time — the
equivalent of ANTLR refusing a grammar).

Error reporting keeps the *furthest* failure position and the union of
expected terminals there, which is what a user of a tailored dialect needs
to see ("expected WHERE or end of input").

Beyond the classic raise-on-first-error entry points, the parser offers a
**resilient pipeline**: :meth:`Parser.parse_with_diagnostics` scans in
recovery mode, panic-mode-recovers on syntax errors by synchronizing on
the program's per-rule sync sets (statement boundaries ``;``, closing
parens), and returns a partial tree together with *every* diagnostic in
the input.  A fuel/step budget bounds pathological backtracking with a
clean :class:`~repro.errors.ParseBudgetExceeded` instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics.model import (
    TOO_MANY_ERRORS,
    Diagnostic,
    DiagnosticBag,
    Severity,
    Span,
)
from ..errors import (
    LLConflictError,
    ParseBudgetExceeded,
    ParseDeadlineExceeded,
    ParseError,
)
from ..grammar.grammar import Grammar
from ..grammar.validate import validate
from ..lexer.scanner import Scanner
from ..lexer.token import EOF, ERROR, Token
from .first_follow import GrammarAnalysis
from .ll1 import LLTable
from .program import (
    CONSUMABLE_SYNC,
    OP_CALL,
    OP_CHOICE,
    OP_LOOP,
    OP_MATCH,
    OP_OPT,
    OP_SEPLOOP,
    OP_SEQ,
    ParseProgram,
    compile_program,
)
from .tree import Node

#: Fuel granted per input token when no explicit budget is configured on
#: the diagnostics path; generous for real grammars, small enough that
#: exponential backtracking on adversarial input dies quickly.
DEFAULT_STEPS_PER_TOKEN = 4000

#: Budget floor so tiny inputs still get room to fail informatively.
DEFAULT_STEP_FLOOR = 20_000

#: Backwards-compatible alias; the canonical definition lives with the IR.
_CONSUMABLE_SYNC = CONSUMABLE_SYNC

#: How often (in interpreter steps) the driver consults a propagated
#: wall-clock deadline.  Checks piggyback on the fuel counter with a
#: power-of-two mask, so the hot path pays one extra AND + branch per
#: step; at >1M steps/s a timed-out parse aborts within ~1 ms.
DEADLINE_CHECK_INTERVAL = 1024
_DEADLINE_MASK = DEADLINE_CHECK_INTERVAL - 1

#: Maximum simultaneous rule activations.  Kept well under Python's own
#: recursion limit (each activation costs a handful of interpreter
#: frames) so deeply nested input surfaces as ParseBudgetExceeded rather
#: than RecursionError.
DEFAULT_MAX_DEPTH = 200


class _Failure(Exception):
    """Internal backtracking signal; never escapes :meth:`Parser.parse`."""

    __slots__ = ("index", "expected")

    def __init__(self, index: int, expected: frozenset[str]) -> None:
        self.index = index
        self.expected = expected


@dataclass
class ParseOutcome:
    """Result of :meth:`Parser.parse_with_diagnostics`.

    Attributes:
        tree: The (possibly partial) parse tree — every input region the
            recovering parser could make sense of, in source order.
            ``None`` only when the grammar has no start rule.
        diagnostics: Every scan/parse diagnostic found in one pass.
        source: The original text, kept so diagnostics can render caret
            excerpts.
    """

    tree: Node | None
    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    source: str | None = None

    @property
    def ok(self) -> bool:
        """Did the input parse without a single error?"""
        return not self.diagnostics.has_errors

    def render(self, filename: str = "<input>") -> str:
        """All diagnostics as caret-annotated text."""
        from ..diagnostics.render import render_diagnostics

        return render_diagnostics(
            self.diagnostics, source=self.source, filename=filename
        )


class Parser:
    """A ready-to-use parser for one composed grammar.

    Args:
        grammar: A *closed* grammar (validation must pass).
        scanner: Optional custom scanner; defaults to one built from the
            grammar's token set.
        strict: Refuse non-LL(1) grammars instead of backtracking.
        max_steps: Fuel budget for every parse: the maximum number of
            instruction-execution steps before :class:`ParseBudgetExceeded`
            is raised.  ``None`` (default) means unlimited for
            :meth:`parse`/:meth:`parse_tokens`; the diagnostics path
            always applies an input-scaled default.
        hint_provider: Optional callback ``token -> tuple[str, ...]``
            consulted when a syntax error is built; returned hints (e.g.
            "enable feature 'Window'") are attached to the error and its
            diagnostic.
        analysis / table / program: Let a registry share the immutable
            compiled pieces across per-thread parser instances; passing
            them asserts the grammar was already validated when they were
            built.  When ``program`` is omitted it is compiled here.
    """

    def __init__(
        self,
        grammar: Grammar,
        scanner: Scanner | None = None,
        strict: bool = False,
        max_steps: int | None = None,
        hint_provider=None,
        max_depth: int = DEFAULT_MAX_DEPTH,
        analysis: GrammarAnalysis | None = None,
        table: LLTable | None = None,
        program: ParseProgram | None = None,
    ) -> None:
        if program is None:
            if analysis is None:
                validate(grammar).raise_if_failed()
                analysis = GrammarAnalysis(grammar)
            program = compile_program(grammar, analysis)
        self.grammar = grammar
        self.scanner = scanner if scanner is not None else Scanner(grammar.tokens)
        self.program = program
        self._analysis = analysis
        self._table = table
        self.strict = strict
        if strict and self.table.conflicts:
            raise LLConflictError(
                f"grammar {grammar.name!r} is not LL(1): "
                + "; ".join(str(c) for c in self.table.conflicts[:5]),
                conflicts=self.table.conflicts,
            )
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.hint_provider = hint_provider
        # opt-in coverage instrumentation (None = off, zero overhead)
        self._coverage = None
        # hot-path aliases into the program
        self._code = program.code
        self._rule_names = program.rule_names
        # parse state (reset per parse call)
        self._tokens: list[Token] = []
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected: set[str] = set()
        self._steps = 0
        self._depth = 0
        self._budget: int | None = None
        self._deadline = None

    # -- shared compiled artifacts (lazy: a program-driven parser does not
    # -- need them unless a caller asks for conflict metrics or FIRST sets)

    @property
    def analysis(self) -> GrammarAnalysis:
        if self._analysis is None:
            self._analysis = GrammarAnalysis(self.grammar)
        return self._analysis

    @property
    def table(self) -> LLTable:
        if self._table is None:
            self._table = LLTable(self.grammar, self.analysis)
        return self._table

    # -- public API -----------------------------------------------------------

    def parse(self, text: str, start: str | None = None) -> Node:
        """Parse source text into a parse tree rooted at the start rule.

        Raises:
            ParseError: with position and expected-terminal information.
            ScanError: when tokenization fails.
        """
        return self.parse_tokens(self.scanner.scan(text), start=start)

    def parse_tokens(
        self,
        tokens: list[Token],
        start: str | None = None,
        max_steps: int | None = None,
        deadline=None,
    ) -> Node:
        """Parse an already-scanned token list (must end with EOF).

        ``max_steps`` overrides the parser-level fuel budget for this
        call; exceeding it raises :class:`~repro.errors.ParseBudgetExceeded`.
        ``deadline`` is an optional
        :class:`~repro.resilience.deadline.Deadline`; the driver checks it
        every :data:`DEADLINE_CHECK_INTERVAL` steps and aborts with
        :class:`~repro.errors.ParseDeadlineExceeded` (E0203) once expired,
        so a timed-out service request releases its worker promptly.
        """
        rule_id = self._start_rule_id(start)
        self._tokens = tokens
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected = set()
        self._steps = 0
        self._depth = 0
        self._budget = max_steps if max_steps is not None else self.max_steps
        if deadline is not None and self._budget is None:
            # deadline checks piggyback on the fuel counter; give the
            # counter the input-scaled default so it actually runs
            self._budget = (
                DEFAULT_STEPS_PER_TOKEN * len(tokens) + DEFAULT_STEP_FLOOR
            )
        self._deadline = deadline
        try:
            node = self._call_rule(rule_id)
            if not self._tokens[self._index].is_eof:
                self._fail(frozenset((EOF,)))
            return node
        except _Failure:
            raise self._build_error() from None
        finally:
            self._budget = None
            self._deadline = None

    def parse_with_diagnostics(
        self,
        text: str,
        start: str | None = None,
        max_errors: int | None = 25,
        max_steps: int | None = None,
        deadline=None,
    ) -> ParseOutcome:
        """Resilient one-pass parse: partial tree plus *every* diagnostic.

        The pipeline never raises on malformed input:

        1. the scanner runs in recovery mode, reporting unmatchable
           characters as diagnostics instead of dying on the first one;
        2. on a syntax error the parser records a diagnostic (with
           feature hints when a ``hint_provider`` is configured), then
           panic-mode-synchronizes: tokens are skipped up to the start
           rule's sync set from the program (``;``, closing parens, EOF)
           and parsing resumes, so later errors are found in the same
           pass;
        3. a fuel budget (input-scaled unless overridden) turns
           pathological backtracking into a diagnostic instead of a hang.

        Args:
            text: Source text.
            start: Start rule override.
            max_errors: Stop recovering after this many errors
                (``None`` = unlimited; values below 1 are clamped to 1,
                since a zero-capacity bag would skip parsing entirely
                and report garbage as accepted).
            max_steps: Fuel override; defaults to
                ``DEFAULT_STEPS_PER_TOKEN * tokens + DEFAULT_STEP_FLOOR``.
            deadline: Optional propagated
                :class:`~repro.resilience.deadline.Deadline`; expiry
                surfaces as an E0203 diagnostic, not an exception.
        """
        if max_errors is not None and max_errors < 1:
            max_errors = 1
        tokens, scan_diagnostics = self.scanner.scan_with_diagnostics(text)
        bag = DiagnosticBag(max_errors=max_errors)
        bag.extend(scan_diagnostics)
        # ERROR tokens are already diagnosed; drop them so the parser sees
        # the best-effort remainder of the stream.
        tokens = [t for t in tokens if t.type != ERROR]

        start_rule = start if start is not None else self.grammar.start
        if start_rule is None:
            bag.add(Diagnostic("grammar has no start rule"))
            return ParseOutcome(None, bag, text)

        rule_id = self._start_rule_id(start)
        body = self._code[rule_id]
        sync = self.program.sync[rule_id]
        consumable = self.program.consumable
        self._tokens = tokens
        self._index = 0
        self._steps = 0
        self._depth = 0
        if max_steps is None:
            max_steps = DEFAULT_STEPS_PER_TOKEN * len(tokens) + DEFAULT_STEP_FLOOR
        self._budget = max_steps
        self._deadline = deadline

        root = Node(start_rule)
        coverage = self._coverage
        try:
            while not bag.full():
                if coverage is not None:
                    # the start rule's body runs without a _call_rule frame;
                    # count its entry here so rule coverage still sees it
                    coverage.rules[rule_id] += 1
                iteration_start = self._index
                self._furthest_index = self._index
                self._furthest_expected = set()
                segment = Node(start_rule)
                failed = False
                try:
                    # execute the start rule's body directly into the
                    # segment (no depth frame) so a partially parsed
                    # single-alternative rule keeps its children
                    self._exec(body, segment.children)
                except _Failure:
                    failed = True
                root.children.extend(segment.children)
                if not failed and self._tokens[self._index].is_eof:
                    break
                if not failed:
                    # a segment parsed but trailing input remains
                    if self._index > self._furthest_index:
                        self._furthest_index = self._index
                        self._furthest_expected = set()
                    if self._index == self._furthest_index:
                        self._furthest_expected.add(EOF)
                bag.add(self._build_error().to_diagnostic())
                # panic-mode synchronization: skip to a sync token
                self._index = max(self._index, self._furthest_index)
                while (
                    not self._current.is_eof and self._current.type not in sync
                ):
                    self._index += 1
                while (
                    not self._current.is_eof
                    and self._current.type in consumable
                ):
                    self._index += 1
                if self._current.is_eof:
                    break
                if self._index == iteration_start:
                    self._index += 1  # always make progress
        except ParseBudgetExceeded as exceeded:
            bag.add(exceeded.to_diagnostic())
        finally:
            self._budget = None
            self._deadline = None
        if bag.full() and not self._current.is_eof:
            bag.truncated = True
        if bag.truncated:
            bag.items.append(
                Diagnostic(
                    "too many errors; giving up on the rest of the input",
                    span=Span.of_token(self._current),
                    severity=Severity.NOTE,
                    code=TOO_MANY_ERRORS,
                )
            )
        return ParseOutcome(root, bag, text)

    def accepts(
        self,
        text: str,
        start: str | None = None,
        max_steps: int | None = None,
    ) -> bool:
        """True when the text parses; scan and parse errors both count as no.

        Resource-limit exhaustion — the fuel budget (``max_steps`` here or
        the parser-level one) or the recursion-depth cap — also counts as
        rejection: an input this parser refuses to spend more resources on
        is an input it does not accept (E0202 never escapes as a crash).
        """
        from ..errors import ScanError

        try:
            self.parse_tokens(self.scanner.scan(text), start=start,
                              max_steps=max_steps)
        except ParseBudgetExceeded:
            # explicit: budget/depth exhaustion is a rejection, not an error
            return False
        except (ParseError, ScanError):
            return False
        return True

    # -- coverage instrumentation ----------------------------------------------

    @property
    def coverage(self):
        """The active :class:`~repro.parsing.coverage.CoverageCollector`."""
        return self._coverage

    def enable_coverage(self, collector=None):
        """Switch this parser to the instrumented interpreter path.

        Every subsequent parse counts rule entries, CHOICE-alternative
        selections, and OPT/LOOP taken/skipped edges into ``collector``
        (a fresh one keyed to this parser's program when omitted).
        Instrumentation is per-parser (and parsers are per-thread in the
        service layer), so counting is lock-free; fold per-thread
        collectors together with
        :meth:`~repro.parsing.coverage.CoverageCollector.merge`.

        Prefer a dedicated parser instance for coverage work: the flip
        into (or out of) instrumented mode materializes this instance's
        attribute dict, permanently costing ~15-20% of interpretation
        throughput on CPython 3.11+ — a parser that never opts in pays
        nothing, which is why the service layer keeps separate plain and
        instrumented per-thread parsers.

        Returns the active collector.
        """
        from .coverage import CoverageCollector, CoverageMap

        if collector is None:
            collector = CoverageCollector(CoverageMap(self.program))
        elif collector.map.program is not self.program:
            # point ids are keyed by instruction identity, so a collector
            # built over any other program object cannot be used here
            raise ValueError(
                "coverage collector is keyed to a different parse program "
                f"({collector.map.program.grammar_name!r})"
            )
        self._coverage = collector
        self.__class__ = _InstrumentedParser
        return collector

    def disable_coverage(self):
        """Restore the uninstrumented path; returns the collector (or None)."""
        collector = self._coverage
        self._coverage = None
        self.__class__ = Parser
        return collector

    # -- parse machinery --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _start_rule_id(self, start: str | None) -> int:
        """Resolve a start-rule override to its interned program id."""
        start_rule = start if start is not None else self.grammar.start
        if start_rule is None:
            raise ParseError("grammar has no start rule")
        rule_id = self.program.rule_ids.get(start_rule)
        if rule_id is None:
            # unknown rule: delegate for the canonical GrammarError
            self.grammar.rule(start_rule)
            raise ParseError(f"grammar has no rule {start_rule!r}")
        return rule_id

    def _sync_set(self, start_rule: str) -> frozenset[str]:
        """Panic-mode synchronization terminals for a rule (from the program)."""
        rule_id = self.program.rule_ids.get(start_rule)
        if rule_id is None:
            self.grammar.rule(start_rule)  # canonical GrammarError
            return frozenset((EOF,))
        return self.program.sync[rule_id]

    def _fail(self, expected: frozenset[str]) -> None:
        if self._index > self._furthest_index:
            self._furthest_index = self._index
            self._furthest_expected = set(expected)
        elif self._index == self._furthest_index:
            self._furthest_expected |= expected
        raise _Failure(self._index, expected)

    def _build_error(self) -> ParseError:
        token = self._tokens[min(self._furthest_index, len(self._tokens) - 1)]
        found = "end of input" if token.is_eof else repr(token.text)
        expected = ", ".join(sorted(self._furthest_expected))
        span = Span.of_token(token)
        hints: tuple[str, ...] = ()
        if self.hint_provider is not None and not token.is_eof:
            expected_set = frozenset(self._furthest_expected)
            try:
                hints = tuple(self.hint_provider(token, expected_set))
            except TypeError:
                try:  # provider may take the token alone
                    hints = tuple(self.hint_provider(token))
                except Exception:
                    hints = ()
            except Exception:  # a hint must never mask the real error
                hints = ()
        return ParseError(
            f"syntax error: found {found}, expected one of: {expected}",
            line=token.line,
            column=token.column,
            expected=frozenset(self._furthest_expected),
            found=token.type,
            end_line=span.end_line,
            end_column=span.end_column,
            hints=hints,
        )

    def _budget_exceeded(self) -> ParseBudgetExceeded:
        token = self._tokens[self._index]
        return ParseBudgetExceeded(
            f"parse budget of {self._budget} steps exceeded "
            f"(pathological backtracking near {token.type})",
            line=token.line,
            column=token.column,
            steps=self._steps,
        )

    def _deadline_exceeded(self) -> ParseDeadlineExceeded:
        token = self._tokens[min(self._index, len(self._tokens) - 1)]
        return ParseDeadlineExceeded(
            f"parse aborted: request deadline expired after {self._steps} "
            f"steps (near {token.type})",
            line=token.line,
            column=token.column,
            steps=self._steps,
        )

    def _call_rule(self, rule_id: int) -> Node:
        self._depth += 1
        if self._depth > self.max_depth:
            self._depth = 0  # unwind fully; outer finally blocks re-raise
            token = self._tokens[self._index]
            raise ParseBudgetExceeded(
                f"parser recursion depth limit of {self.max_depth} exceeded "
                f"(input nested too deeply near {token.type})",
                line=token.line,
                column=token.column,
                steps=self._steps,
            )
        try:
            node = Node(self._rule_names[rule_id])
            self._exec(self._code[rule_id], node.children)
            return node
        finally:
            self._depth = max(0, self._depth - 1)

    def _exec(self, instr, children: list) -> None:
        """Execute one tuple-encoded instruction against the token stream."""
        if self._budget is not None:
            steps = self._steps + 1
            self._steps = steps
            if steps > self._budget:
                raise self._budget_exceeded()
            # mask test first: the deadline attributes are only touched
            # once per check interval, keeping the hot path branch-cheap
            if not (steps & _DEADLINE_MASK) and (
                self._deadline is not None and self._deadline.expired()
            ):
                raise self._deadline_exceeded()
        op = instr[0]
        if op == OP_MATCH:
            token = self._tokens[self._index]
            if token.type != instr[1]:
                self._fail(instr[2])
            children.append(token)
            self._index += 1
        elif op == OP_SEQ:
            for item in instr[1]:
                self._exec(item, children)
        elif op == OP_CALL:
            children.append(self._call_rule(instr[1]))
        elif op == OP_CHOICE:
            # (op, dispatch, default, expected, blocks, firsts, nullables)
            candidates = instr[1].get(self._tokens[self._index].type)
            if candidates is None:
                candidates = instr[2]
            if not candidates:
                self._fail(instr[3])
            if len(candidates) == 1:
                self._exec(candidates[0], children)
                return
            saved_index = self._index
            saved_len = len(children)
            last_failure: _Failure | None = None
            for block in candidates:
                try:
                    self._exec(block, children)
                    return
                except _Failure as failure:
                    last_failure = failure
                    self._index = saved_index
                    del children[saved_len:]
            assert last_failure is not None
            raise last_failure
        elif op == OP_OPT:
            # (op, inner, first)
            if self._tokens[self._index].type not in instr[2]:
                return
            saved_index = self._index
            saved_len = len(children)
            try:
                self._exec(instr[1], children)
            except _Failure:
                # the optional content looked plausible but did not parse;
                # treat as absent and let the continuation decide
                self._index = saved_index
                del children[saved_len:]
        elif op == OP_LOOP:
            # (op, inner, first, min)
            inner = instr[1]
            first = instr[2]
            count = 0
            while self._tokens[self._index].type in first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._exec(inner, children)
                except _Failure:
                    self._index = saved_index
                    del children[saved_len:]
                    break
                if self._index == saved_index:
                    break  # inner matched empty input; avoid infinite loop
                count += 1
            if count < instr[3]:
                self._fail(first)
        else:  # OP_SEPLOOP: (op, inner, sep, first, sep_first, min)
            if instr[5] == 0 and self._tokens[self._index].type not in instr[3]:
                return
            self._exec(instr[1], children)
            sep_first = instr[4]
            while self._tokens[self._index].type in sep_first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._exec(instr[2], children)
                    self._exec(instr[1], children)
                except _Failure:
                    # the separator belonged to the surrounding context
                    self._index = saved_index
                    del children[saved_len:]
                    break

    # -- instrumented parse machinery -------------------------------------------
    #
    # ``enable_coverage`` switches dispatch to the methods below (via the
    # ``_InstrumentedParser`` class flip).  MATCH/SEQ/CALL have no decision
    # to record, so they delegate to the canonical ``_exec`` — whose
    # recursive ``self._exec`` calls re-enter the instrumented path —
    # keeping one source of truth for their semantics.
    # CHOICE/OPT/LOOP/SEPLOOP are mirrored with counter bumps at the
    # points where the uninstrumented code commits to a decision; control
    # flow is otherwise identical instruction for instruction (guarded by
    # the parity tests in ``tests/test_parsing_coverage.py``).

    def _call_rule_cov(self, rule_id: int) -> Node:
        self._coverage.rules[rule_id] += 1
        return Parser._call_rule(self, rule_id)

    def _exec_cov(self, instr, children: list) -> None:
        op = instr[0]
        if op < OP_CHOICE:  # OP_MATCH, OP_CALL, OP_SEQ: no decision here
            return Parser._exec(self, instr, children)
        if self._budget is not None:
            steps = self._steps + 1
            self._steps = steps
            if steps > self._budget:
                raise self._budget_exceeded()
            if not (steps & _DEADLINE_MASK) and (
                self._deadline is not None and self._deadline.expired()
            ):
                raise self._deadline_exceeded()
        cov = self._coverage
        if op == OP_CHOICE:
            slot_of_block = cov.map.slot_of_block
            alts = cov.alts
            candidates = instr[1].get(self._tokens[self._index].type)
            if candidates is None:
                candidates = instr[2]
            if not candidates:
                self._fail(instr[3])
            if len(candidates) == 1:
                block = candidates[0]
                self._exec(block, children)
                alts[slot_of_block[id(block)]] += 1
                return
            saved_index = self._index
            saved_len = len(children)
            last_failure: _Failure | None = None
            for block in candidates:
                try:
                    self._exec(block, children)
                except _Failure as failure:
                    last_failure = failure
                    self._index = saved_index
                    del children[saved_len:]
                else:
                    alts[slot_of_block[id(block)]] += 1
                    return
            assert last_failure is not None
            raise last_failure
        point = cov.map.decision_of_instr[id(instr)]
        if op == OP_OPT:
            if self._tokens[self._index].type not in instr[2]:
                cov.skipped[point] += 1
                return
            saved_index = self._index
            saved_len = len(children)
            try:
                self._exec(instr[1], children)
            except _Failure:
                self._index = saved_index
                del children[saved_len:]
                cov.skipped[point] += 1
            else:
                cov.taken[point] += 1
        elif op == OP_LOOP:
            inner = instr[1]
            first = instr[2]
            count = 0
            while self._tokens[self._index].type in first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._exec(inner, children)
                except _Failure:
                    self._index = saved_index
                    del children[saved_len:]
                    break
                if self._index == saved_index:
                    break
                count += 1
            if count < instr[3]:
                self._fail(first)
            if count > instr[3]:
                cov.taken[point] += 1
            else:
                cov.skipped[point] += 1
        else:  # OP_SEPLOOP
            if instr[5] == 0 and self._tokens[self._index].type not in instr[3]:
                cov.skipped[point] += 1
                return
            self._exec(instr[1], children)
            items = 1
            sep_first = instr[4]
            while self._tokens[self._index].type in sep_first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._exec(instr[2], children)
                    self._exec(instr[1], children)
                except _Failure:
                    self._index = saved_index
                    del children[saved_len:]
                    break
                items += 1
            if items >= 2:
                cov.taken[point] += 1
            else:
                cov.skipped[point] += 1


class _InstrumentedParser(Parser):
    """The coverage-counting flavor of :class:`Parser`.

    Never instantiated directly: ``enable_coverage`` flips an existing
    parser's ``__class__`` here and ``disable_coverage`` flips it back.
    Both modes therefore dispatch plain class methods — the off path
    stays byte-identical to a parser that never opted in, with no
    per-instruction coverage branch and no instance-dict method
    rebinding (adding and later popping instance keys would wreck the
    shared-key dict layout and slow every attribute access on the
    instance by ~15-20% on CPython 3.11).
    """

    __slots__ = ()

    _exec = Parser._exec_cov
    _call_rule = Parser._call_rule_cov
