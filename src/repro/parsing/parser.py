"""Predictive recursive-descent parser interpreter.

Given a composed grammar, :class:`Parser` parses token streams into
concrete parse trees.  Decisions are FIRST-directed (LL(1)); where the
grammar is not LL(1) the parser falls back to ordered backtracking among
the candidate alternatives (disable with ``strict=True``, which instead
raises :class:`~repro.errors.LLConflictError` at construction time — the
equivalent of ANTLR refusing a grammar).

Error reporting keeps the *furthest* failure position and the union of
expected terminals there, which is what a user of a tailored dialect needs
to see ("expected WHERE or end of input").

Beyond the classic raise-on-first-error entry points, the parser offers a
**resilient pipeline**: :meth:`Parser.parse_with_diagnostics` scans in
recovery mode, panic-mode-recovers on syntax errors by synchronizing on
FOLLOW-derived sync-token sets (statement boundaries ``;``, closing
parens), and returns a partial tree together with *every* diagnostic in
the input.  A fuel/step budget bounds pathological backtracking with a
clean :class:`~repro.errors.ParseBudgetExceeded` instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics.model import (
    TOO_MANY_ERRORS,
    Diagnostic,
    DiagnosticBag,
    Severity,
    Span,
)
from ..errors import LLConflictError, ParseBudgetExceeded, ParseError
from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar
from ..grammar.validate import validate
from ..lexer.scanner import Scanner
from ..lexer.token import EOF, ERROR, Token
from .first_follow import GrammarAnalysis
from .ll1 import LLTable
from .tree import Node

#: Fuel granted per input token when no explicit budget is configured on
#: the diagnostics path; generous for real grammars, small enough that
#: exponential backtracking on adversarial input dies quickly.
DEFAULT_STEPS_PER_TOKEN = 4000

#: Budget floor so tiny inputs still get room to fail informatively.
DEFAULT_STEP_FLOOR = 20_000

#: Sync terminals the recovery loop may *consume* (they can never start a
#: new top-level construct, so skipping past them is always safe).
_CONSUMABLE_SYNC = ("SEMICOLON", "RPAREN")

#: Maximum simultaneous rule activations.  Kept well under Python's own
#: recursion limit (each activation costs a handful of interpreter
#: frames) so deeply nested input surfaces as ParseBudgetExceeded rather
#: than RecursionError.
DEFAULT_MAX_DEPTH = 200


class _Failure(Exception):
    """Internal backtracking signal; never escapes :meth:`Parser.parse`."""

    __slots__ = ("index", "expected")

    def __init__(self, index: int, expected: frozenset[str]) -> None:
        self.index = index
        self.expected = expected


@dataclass
class ParseOutcome:
    """Result of :meth:`Parser.parse_with_diagnostics`.

    Attributes:
        tree: The (possibly partial) parse tree — every input region the
            recovering parser could make sense of, in source order.
            ``None`` only when the grammar has no start rule.
        diagnostics: Every scan/parse diagnostic found in one pass.
        source: The original text, kept so diagnostics can render caret
            excerpts.
    """

    tree: Node | None
    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    source: str | None = None

    @property
    def ok(self) -> bool:
        """Did the input parse without a single error?"""
        return not self.diagnostics.has_errors

    def render(self, filename: str = "<input>") -> str:
        """All diagnostics as caret-annotated text."""
        from ..diagnostics.render import render_diagnostics

        return render_diagnostics(
            self.diagnostics, source=self.source, filename=filename
        )


class Parser:
    """A ready-to-use parser for one composed grammar.

    Args:
        grammar: A *closed* grammar (validation must pass).
        scanner: Optional custom scanner; defaults to one built from the
            grammar's token set.
        strict: Refuse non-LL(1) grammars instead of backtracking.
        max_steps: Fuel budget for every parse: the maximum number of
            element-expansion steps before :class:`ParseBudgetExceeded`
            is raised.  ``None`` (default) means unlimited for
            :meth:`parse`/:meth:`parse_tokens`; the diagnostics path
            always applies an input-scaled default.
        hint_provider: Optional callback ``token -> tuple[str, ...]``
            consulted when a syntax error is built; returned hints (e.g.
            "enable feature 'Window'") are attached to the error and its
            diagnostic.
    """

    def __init__(
        self,
        grammar: Grammar,
        scanner: Scanner | None = None,
        strict: bool = False,
        max_steps: int | None = None,
        hint_provider=None,
        max_depth: int = DEFAULT_MAX_DEPTH,
        analysis: GrammarAnalysis | None = None,
        table: LLTable | None = None,
    ) -> None:
        # ``analysis``/``table`` let a registry share the immutable compiled
        # pieces across per-thread parser instances; passing them asserts
        # the grammar was already validated when they were built.
        if analysis is None:
            validate(grammar).raise_if_failed()
            analysis = GrammarAnalysis(grammar)
        self.grammar = grammar
        self.scanner = scanner if scanner is not None else Scanner(grammar.tokens)
        self.analysis = analysis
        self.table = table if table is not None else LLTable(grammar, self.analysis)
        self.strict = strict
        if strict and self.table.conflicts:
            raise LLConflictError(
                f"grammar {grammar.name!r} is not LL(1): "
                + "; ".join(str(c) for c in self.table.conflicts[:5]),
                conflicts=self.table.conflicts,
            )
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.hint_provider = hint_provider
        self._sync_sets: dict[str, frozenset[str]] = {}
        # parse state (reset per parse call)
        self._tokens: list[Token] = []
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected: set[str] = set()
        self._steps = 0
        self._depth = 0
        self._budget: int | None = None

    # -- public API -----------------------------------------------------------

    def parse(self, text: str, start: str | None = None) -> Node:
        """Parse source text into a parse tree rooted at the start rule.

        Raises:
            ParseError: with position and expected-terminal information.
            ScanError: when tokenization fails.
        """
        return self.parse_tokens(self.scanner.scan(text), start=start)

    def parse_tokens(
        self,
        tokens: list[Token],
        start: str | None = None,
        max_steps: int | None = None,
    ) -> Node:
        """Parse an already-scanned token list (must end with EOF).

        ``max_steps`` overrides the parser-level fuel budget for this
        call; exceeding it raises :class:`~repro.errors.ParseBudgetExceeded`.
        """
        start_rule = start if start is not None else self.grammar.start
        if start_rule is None:
            raise ParseError("grammar has no start rule")
        self._tokens = tokens
        self._index = 0
        self._furthest_index = 0
        self._furthest_expected = set()
        self._steps = 0
        self._depth = 0
        self._budget = max_steps if max_steps is not None else self.max_steps
        try:
            node = self._parse_rule(start_rule)
            if not self._current.is_eof:
                self._fail(frozenset((EOF,)))
            return node
        except _Failure:
            raise self._build_error() from None
        finally:
            self._budget = None

    def parse_with_diagnostics(
        self,
        text: str,
        start: str | None = None,
        max_errors: int | None = 25,
        max_steps: int | None = None,
    ) -> ParseOutcome:
        """Resilient one-pass parse: partial tree plus *every* diagnostic.

        The pipeline never raises on malformed input:

        1. the scanner runs in recovery mode, reporting unmatchable
           characters as diagnostics instead of dying on the first one;
        2. on a syntax error the parser records a diagnostic (with
           feature hints when a ``hint_provider`` is configured), then
           panic-mode-synchronizes: tokens are skipped up to the start
           rule's FOLLOW-derived sync set (``;``, closing parens, EOF)
           and parsing resumes, so later errors are found in the same
           pass;
        3. a fuel budget (input-scaled unless overridden) turns
           pathological backtracking into a diagnostic instead of a hang.

        Args:
            text: Source text.
            start: Start rule override.
            max_errors: Stop recovering after this many errors
                (``None`` = unlimited; values below 1 are clamped to 1,
                since a zero-capacity bag would skip parsing entirely
                and report garbage as accepted).
            max_steps: Fuel override; defaults to
                ``DEFAULT_STEPS_PER_TOKEN * tokens + DEFAULT_STEP_FLOOR``.
        """
        if max_errors is not None and max_errors < 1:
            max_errors = 1
        tokens, scan_diagnostics = self.scanner.scan_with_diagnostics(text)
        bag = DiagnosticBag(max_errors=max_errors)
        bag.extend(scan_diagnostics)
        # ERROR tokens are already diagnosed; drop them so the parser sees
        # the best-effort remainder of the stream.
        tokens = [t for t in tokens if t.type != ERROR]

        start_rule = start if start is not None else self.grammar.start
        if start_rule is None:
            bag.add(Diagnostic("grammar has no start rule"))
            return ParseOutcome(None, bag, text)

        rule = self.grammar.rule(start_rule)
        sync = self._sync_set(start_rule)
        self._tokens = tokens
        self._index = 0
        self._steps = 0
        self._depth = 0
        if max_steps is None:
            max_steps = DEFAULT_STEPS_PER_TOKEN * len(tokens) + DEFAULT_STEP_FLOOR
        self._budget = max_steps

        root = Node(start_rule)
        try:
            while not bag.full():
                iteration_start = self._index
                self._furthest_index = self._index
                self._furthest_expected = set()
                segment = Node(start_rule)
                failed = False
                try:
                    self._parse_alternatives(
                        rule.alternatives, segment.children, rule_name=start_rule
                    )
                except _Failure:
                    failed = True
                # keep whatever the attempt managed to build — for a
                # single-alternative start rule the children up to the
                # failure point survive backtracking
                root.children.extend(segment.children)
                if not failed and self._current.is_eof:
                    break
                if not failed:
                    # a segment parsed but trailing input remains
                    if self._index > self._furthest_index:
                        self._furthest_index = self._index
                        self._furthest_expected = set()
                    if self._index == self._furthest_index:
                        self._furthest_expected.add(EOF)
                bag.add(self._build_error().to_diagnostic())
                # panic-mode synchronization: skip to a sync token
                self._index = max(self._index, self._furthest_index)
                while (
                    not self._current.is_eof and self._current.type not in sync
                ):
                    self._index += 1
                while (
                    not self._current.is_eof
                    and self._current.type in _CONSUMABLE_SYNC
                ):
                    self._index += 1
                if self._current.is_eof:
                    break
                if self._index == iteration_start:
                    self._index += 1  # always make progress
        except ParseBudgetExceeded as exceeded:
            bag.add(exceeded.to_diagnostic())
        finally:
            self._budget = None
        if bag.full() and not self._current.is_eof:
            bag.truncated = True
        if bag.truncated:
            bag.items.append(
                Diagnostic(
                    "too many errors; giving up on the rest of the input",
                    span=Span.of_token(self._current),
                    severity=Severity.NOTE,
                    code=TOO_MANY_ERRORS,
                )
            )
        return ParseOutcome(root, bag, text)

    def accepts(self, text: str, start: str | None = None) -> bool:
        """True when the text parses; scan and parse errors both count as no."""
        from ..errors import ScanError

        try:
            self.parse(text, start=start)
        except (ParseError, ScanError):
            return False
        return True

    # -- parse machinery --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _fail(self, expected: frozenset[str]) -> None:
        if self._index > self._furthest_index:
            self._furthest_index = self._index
            self._furthest_expected = set(expected)
        elif self._index == self._furthest_index:
            self._furthest_expected |= expected
        raise _Failure(self._index, expected)

    def _build_error(self) -> ParseError:
        token = self._tokens[min(self._furthest_index, len(self._tokens) - 1)]
        found = "end of input" if token.is_eof else repr(token.text)
        expected = ", ".join(sorted(self._furthest_expected))
        span = Span.of_token(token)
        hints: tuple[str, ...] = ()
        if self.hint_provider is not None and not token.is_eof:
            expected_set = frozenset(self._furthest_expected)
            try:
                hints = tuple(self.hint_provider(token, expected_set))
            except TypeError:
                try:  # provider may take the token alone
                    hints = tuple(self.hint_provider(token))
                except Exception:
                    hints = ()
            except Exception:  # a hint must never mask the real error
                hints = ()
        return ParseError(
            f"syntax error: found {found}, expected one of: {expected}",
            line=token.line,
            column=token.column,
            expected=frozenset(self._furthest_expected),
            found=token.type,
            end_line=span.end_line,
            end_column=span.end_column,
            hints=hints,
        )

    def _sync_set(self, start_rule: str) -> frozenset[str]:
        """FOLLOW-derived synchronization terminals for panic-mode recovery.

        The set is FOLLOW(start) plus the universal statement boundaries
        present in this grammar's token set (``;`` between statements,
        ``)`` closing a nesting level), plus EOF.
        """
        cached = self._sync_sets.get(start_rule)
        if cached is not None:
            return cached
        follow = self.analysis.follow.get(start_rule, frozenset())
        names = self.grammar.tokens.names()
        boundaries = frozenset(t for t in _CONSUMABLE_SYNC if t in names)
        sync = follow | boundaries | frozenset((EOF,))
        self._sync_sets[start_rule] = sync
        return sync

    def _parse_rule(self, name: str) -> Node:
        self._depth += 1
        if self._depth > self.max_depth:
            self._depth = 0  # unwind fully; outer finally blocks re-raise
            token = self._current
            raise ParseBudgetExceeded(
                f"parser recursion depth limit of {self.max_depth} exceeded "
                f"(input nested too deeply near {token.type})",
                line=token.line,
                column=token.column,
                steps=self._steps,
            )
        try:
            rule = self.grammar.rule(name)
            node = Node(name)
            self._parse_alternatives(rule.alternatives, node.children, rule_name=name)
            return node
        finally:
            self._depth = max(0, self._depth - 1)

    def _parse_alternatives(
        self,
        alternatives: list[Element] | tuple[Element, ...],
        children: list,
        rule_name: str | None = None,
    ) -> None:
        lookahead = self._current.type
        viable: list[Element] = []
        nullable_fallbacks: list[Element] = []
        expected: set[str] = set()
        for alt in alternatives:
            first = self.analysis.first_of(alt)
            expected |= first
            if lookahead in first:
                viable.append(alt)
            elif self.analysis.nullable_of(alt):
                nullable_fallbacks.append(alt)

        # Token-consuming candidates first (in declaration order), then
        # epsilon-deriving ones: epsilon must only win when nothing else can.
        candidates = viable + nullable_fallbacks
        if not candidates:
            self._fail(frozenset(expected))

        if len(candidates) == 1:
            self._parse_element(candidates[0], children)
            return

        saved_index = self._index
        saved_len = len(children)
        last_failure: _Failure | None = None
        for alt in candidates:
            try:
                self._parse_element(alt, children)
                return
            except _Failure as failure:
                last_failure = failure
                self._index = saved_index
                del children[saved_len:]
        assert last_failure is not None
        raise last_failure

    def _parse_element(self, element: Element, children: list) -> None:
        if self._budget is not None:
            self._steps += 1
            if self._steps > self._budget:
                token = self._current
                raise ParseBudgetExceeded(
                    f"parse budget of {self._budget} steps exceeded "
                    f"(pathological backtracking near {token.type})",
                    line=token.line,
                    column=token.column,
                    steps=self._steps,
                )
        if isinstance(element, Tok):
            token = self._current
            if token.type != element.name:
                self._fail(frozenset((element.name,)))
            children.append(token)
            self._index += 1
            return
        if isinstance(element, Ref):
            children.append(self._parse_rule(element.name))
            return
        if isinstance(element, Seq):
            for item in element.items:
                self._parse_element(item, children)
            return
        if isinstance(element, Opt):
            self._parse_optional(element.inner, children)
            return
        if isinstance(element, Rep):
            self._parse_repetition(element, children)
            return
        if isinstance(element, Choice):
            self._parse_alternatives(element.alternatives, children)
            return
        raise TypeError(f"unknown element: {element!r}")

    def _parse_optional(self, inner: Element, children: list) -> None:
        first = self.analysis.first_of(inner)
        if self._current.type not in first:
            return
        saved_index = self._index
        saved_len = len(children)
        try:
            self._parse_element(inner, children)
        except _Failure:
            # the optional content looked plausible but did not parse;
            # treat as absent and let the continuation decide
            self._index = saved_index
            del children[saved_len:]

    def _parse_repetition(self, rep: Rep, children: list) -> None:
        first = self.analysis.first_of(rep.inner)
        if rep.separator is None:
            count = 0
            while self._current.type in first:
                saved_index = self._index
                saved_len = len(children)
                try:
                    self._parse_element(rep.inner, children)
                except _Failure:
                    self._index = saved_index
                    del children[saved_len:]
                    break
                if self._index == saved_index:
                    break  # inner matched empty input; avoid infinite loop
                count += 1
            if count < rep.min:
                self._fail(first)
            return

        # separated list: item (SEP item)*
        if rep.min == 0 and self._current.type not in first:
            return
        self._parse_element(rep.inner, children)
        sep_first = self.analysis.first_of(rep.separator)
        while self._current.type in sep_first:
            saved_index = self._index
            saved_len = len(children)
            try:
                self._parse_element(rep.separator, children)
                self._parse_element(rep.inner, children)
            except _Failure:
                # the separator belonged to the surrounding context
                self._index = saved_index
                del children[saved_len:]
                break
