"""One contract, three parser backends.

Every execution strategy for a compiled
:class:`~repro.parsing.program.ParseProgram` — the IR interpreter, the
generated standalone source module, and the closure-compiled threaded
code — registers here as a :class:`ParseBackend`.  The service picks a
backend by name, the conformance and differential suites iterate
:func:`backend_names` instead of hardcoding two backends, and any new
strategy joins the same safety net by calling :func:`register_backend`.

The contract has two halves:

* ``build(product, program=None, hints=True)`` returns a ready parser
  for one composed product.  Capability flags
  (``supports_diagnostics`` / ``supports_coverage`` / ``supports_fuel``)
  say which parts of the full :class:`~repro.parsing.parser.Parser`
  surface that object carries, so callers degrade per backend instead
  of try/except-probing.
* ``outcome(parser, text)`` normalizes a parse attempt to a comparable
  verdict tuple — ``("ok", sexpr)``, ``("error", (line, column,
  expected))`` or ``("scan-error", (line, column))`` — papering over
  the generated module's standalone exception types so differential
  comparison is one ``==``.
"""

from __future__ import annotations

from typing import Any

from ..errors import ParseError, ScanError
from .closures import ClosureParser, compile_closure_program
from .codegen import generate_parser_source, load_generated_parser

INTERPRETER = "interpreter"
GENERATED = "generated"
COMPILED = "compiled"


class ParseBackend:
    """Abstract parse-execution strategy over a ParseProgram.

    Subclasses set :attr:`name` and the capability flags and implement
    :meth:`build`.  One instance serves every product (builders take the
    product as an argument), so registration is process-global.
    """

    #: registry key and the value of ``ParseService(backend=...)``
    name: str = ""
    #: the built parser carries ``parse_with_diagnostics`` (recovery,
    #: hints, partial trees)
    supports_diagnostics: bool = False
    #: the built parser carries ``enable_coverage``/``disable_coverage``
    supports_coverage: bool = False
    #: ``parse_tokens`` honors ``max_steps``/``deadline`` fuel limits
    supports_fuel: bool = False

    def build(
        self, product: Any, program: Any = None, hints: bool = True
    ) -> Any:
        """A ready parser for ``product`` (``program`` shares compiled IR)."""
        raise NotImplementedError

    def outcome(
        self, parser: Any, text: str, start: str | None = None
    ) -> tuple:
        """Normalized verdict for differential comparison."""
        try:
            return ("ok", parser.parse(text, start=start).to_sexpr())
        except ScanError as error:
            return ("scan-error", (error.line, error.column))
        except ParseError as error:
            return ("error", (error.line, error.column, error.expected))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class InterpreterBackend(ParseBackend):
    """The IR interpreter: full surface, the semantic reference."""

    name = INTERPRETER
    supports_diagnostics = True
    supports_coverage = True
    supports_fuel = True

    def build(
        self, product: Any, program: Any = None, hints: bool = True
    ) -> Any:
        return product.parser(hints=hints, program=program)


class CompiledBackend(ParseBackend):
    """Closure-compiled threaded code: full surface, the fast path."""

    name = COMPILED
    supports_diagnostics = True
    supports_coverage = True
    supports_fuel = True

    def build(
        self, product: Any, program: Any = None, hints: bool = True
    ) -> Any:
        if program is None:
            program = product.program()
        return ClosureParser(
            product.grammar,
            compile_closure_program(program),
            hint_provider=product.hint_provider() if hints else None,
        )


class GeneratedParser:
    """Uniform facade over a generated standalone parser module."""

    __slots__ = ("module",)

    def __init__(self, module: Any) -> None:
        self.module = module

    def parse(self, text: str, start: str | None = None) -> Any:
        return self.module.parse(text, start=start)

    def accepts(self, text: str, start: str | None = None) -> bool:
        return self.module.accepts(text, start=start)


class GeneratedBackend(ParseBackend):
    """The pretty-printed standalone module: minimal surface, portable."""

    name = GENERATED

    def build(
        self, product: Any, program: Any = None, hints: bool = True
    ) -> Any:
        if program is None:
            program = product.program()
        module = load_generated_parser(
            generate_parser_source(product.grammar, program=program),
            f"generated_{program.grammar_name}",
        )
        return GeneratedParser(module)

    def outcome(
        self, parser: Any, text: str, start: str | None = None
    ) -> tuple:
        module = parser.module
        try:
            return ("ok", parser.parse(text, start=start).to_sexpr())
        except module.ScanError as error:
            return ("scan-error", (error.line, error.column))
        except module.ParseError as error:
            return ("error", (error.line, error.column, error.expected))


_REGISTRY: dict[str, ParseBackend] = {}


def register_backend(backend: ParseBackend, replace: bool = False) -> None:
    """Add ``backend`` to the process-global registry."""
    if not backend.name:
        raise ValueError("a parse backend needs a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"parse backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> ParseBackend:
    """Look up a registered backend (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown parse backend {name!r} (registered: {known})"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, fastest serving order first."""
    return tuple(_REGISTRY)


register_backend(CompiledBackend())
register_backend(InterpreterBackend())
register_backend(GeneratedBackend())
