"""LL(k) parser-generation substrate.

Public API::

    from repro.parsing import (
        GrammarAnalysis, LLTable, LLConflict,
        ParseProgram, compile_program,
        Parser, Node,
        CoverageMap, CoverageCollector,
        ParserCodeGenerator, generate_parser_source, load_generated_parser,
    )
"""

from .codegen import (
    ParserCodeGenerator,
    generate_parser_source,
    load_generated_parser,
    source_fingerprint,
)
from .coverage import CoverageCollector, CoverageMap
from .first_follow import GrammarAnalysis
from .ll1 import LLConflict, LLTable
from .parser import Parser, ParseOutcome
from .program import (
    IR_VERSION,
    ParseProgram,
    compile_program,
    program_fingerprint,
)
from .sentences import SentenceGenerator, generate_sentences
from .tree import Node

__all__ = [
    "CoverageCollector",
    "CoverageMap",
    "GrammarAnalysis",
    "IR_VERSION",
    "LLConflict",
    "LLTable",
    "Node",
    "ParseOutcome",
    "ParseProgram",
    "Parser",
    "ParserCodeGenerator",
    "SentenceGenerator",
    "compile_program",
    "generate_parser_source",
    "generate_sentences",
    "load_generated_parser",
    "program_fingerprint",
    "source_fingerprint",
]
