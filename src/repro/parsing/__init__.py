"""LL(k) parser-generation substrate.

Public API::

    from repro.parsing import (
        GrammarAnalysis, LLTable, LLConflict,
        Parser, Node,
        ParserCodeGenerator, generate_parser_source, load_generated_parser,
    )
"""

from .codegen import (
    ParserCodeGenerator,
    generate_parser_source,
    load_generated_parser,
    source_fingerprint,
)
from .first_follow import GrammarAnalysis
from .ll1 import LLConflict, LLTable
from .parser import Parser, ParseOutcome
from .sentences import SentenceGenerator, generate_sentences
from .tree import Node

__all__ = [
    "GrammarAnalysis",
    "LLConflict",
    "LLTable",
    "Node",
    "ParseOutcome",
    "Parser",
    "ParserCodeGenerator",
    "SentenceGenerator",
    "generate_parser_source",
    "generate_sentences",
    "load_generated_parser",
    "source_fingerprint",
]
