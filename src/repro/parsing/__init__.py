"""LL(k) parser-generation substrate.

Public API::

    from repro.parsing import (
        GrammarAnalysis, LLTable, LLConflict,
        ParseProgram, compile_program,
        Parser, Node,
        CoverageMap, CoverageCollector,
        ParserCodeGenerator, generate_parser_source, load_generated_parser,
        ParseBackend, get_backend, backend_names,
        ClosureParser, compile_closure_program,
    )
"""

from .backends import (
    COMPILED,
    GENERATED,
    INTERPRETER,
    CompiledBackend,
    GeneratedBackend,
    InterpreterBackend,
    ParseBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .closures import (
    ClosureParser,
    ClosureProgram,
    CompiledScanner,
    closure_fingerprint,
    compile_closure_program,
    generate_closure_source,
)
from .codegen import (
    ParserCodeGenerator,
    generate_parser_source,
    load_generated_parser,
    source_fingerprint,
)
from .coverage import CoverageCollector, CoverageMap
from .first_follow import GrammarAnalysis
from .ll1 import LLConflict, LLTable
from .parser import Parser, ParseOutcome
from .program import (
    IR_VERSION,
    ParseProgram,
    compile_program,
    program_fingerprint,
)
from .sentences import SentenceGenerator, generate_sentences
from .tree import Node

__all__ = [
    "COMPILED",
    "ClosureParser",
    "ClosureProgram",
    "CompiledBackend",
    "CompiledScanner",
    "CoverageCollector",
    "CoverageMap",
    "GENERATED",
    "GeneratedBackend",
    "GrammarAnalysis",
    "INTERPRETER",
    "IR_VERSION",
    "InterpreterBackend",
    "LLConflict",
    "LLTable",
    "Node",
    "ParseBackend",
    "ParseOutcome",
    "ParseProgram",
    "Parser",
    "ParserCodeGenerator",
    "SentenceGenerator",
    "backend_names",
    "closure_fingerprint",
    "compile_closure_program",
    "compile_program",
    "generate_closure_source",
    "generate_parser_source",
    "generate_sentences",
    "get_backend",
    "load_generated_parser",
    "program_fingerprint",
    "register_backend",
    "source_fingerprint",
]
