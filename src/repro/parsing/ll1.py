"""LL(1) parse-table construction and conflict reporting.

The table serves three purposes in the reproduction:

* **conflict reporting** — the diagnostic ANTLR would give the paper's
  authors when a composed grammar is ambiguous under one-token lookahead;
* **strict mode** — :class:`~repro.parsing.parser.Parser` can refuse
  non-LL(1) grammars outright;
* **size metrics** — experiment E6 reports table entries per dialect as a
  proxy for parser footprint on embedded targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..grammar.expr import Element
from ..grammar.grammar import Grammar
from .first_follow import GrammarAnalysis


@dataclass(frozen=True, slots=True)
class LLConflict:
    """Two alternatives of one rule competing for the same lookahead."""

    rule: str
    terminal: str
    first_alternative: int
    second_alternative: int

    def __str__(self) -> str:
        return (
            f"rule {self.rule!r}: alternatives {self.first_alternative} and "
            f"{self.second_alternative} both start with {self.terminal!r}"
        )


class LLTable:
    """The LL(1) prediction table M[nonterminal, terminal] -> alternative.

    Entries are alternative indices into the rule's alternative list.  A
    cell claimed by two alternatives produces an :class:`LLConflict`; the
    first claimant keeps the cell (matching the parser's ordered-choice
    behaviour).
    """

    def __init__(self, grammar: Grammar, analysis: GrammarAnalysis | None = None) -> None:
        self.grammar = grammar
        self.analysis = analysis if analysis is not None else GrammarAnalysis(grammar)
        self.entries: dict[tuple[str, str], int] = {}
        self.conflicts: list[LLConflict] = []
        self._build()

    def _build(self) -> None:
        for rule in self.grammar:
            claimed: dict[str, int] = {}
            nullable_alt: int | None = None
            for alt_index, alt in enumerate(rule.alternatives):
                for terminal in self.analysis.first_of(alt):
                    if terminal in claimed:
                        self.conflicts.append(
                            LLConflict(rule.name, terminal, claimed[terminal], alt_index)
                        )
                        continue
                    claimed[terminal] = alt_index
                    self.entries[(rule.name, terminal)] = alt_index
                if self.analysis.nullable_of(alt):
                    if nullable_alt is not None:
                        self.conflicts.append(
                            LLConflict(rule.name, "<epsilon>", nullable_alt, alt_index)
                        )
                    else:
                        nullable_alt = alt_index
            if nullable_alt is not None:
                for terminal in self.analysis.follow.get(rule.name, frozenset()):
                    if terminal in claimed:
                        if claimed[terminal] != nullable_alt:
                            self.conflicts.append(
                                LLConflict(
                                    rule.name, terminal, claimed[terminal], nullable_alt
                                )
                            )
                        continue
                    claimed[terminal] = nullable_alt
                    self.entries[(rule.name, terminal)] = nullable_alt

    # -- queries ---------------------------------------------------------------

    def predict(self, rule_name: str, terminal: str) -> int | None:
        """Alternative index predicted for (rule, lookahead), if any."""
        return self.entries.get((rule_name, terminal))

    def alternative_for(self, rule_name: str, terminal: str) -> Element | None:
        index = self.predict(rule_name, terminal)
        if index is None:
            return None
        return self.grammar.rule(rule_name).alternatives[index]

    @property
    def is_ll1(self) -> bool:
        return not self.conflicts

    def metrics(self) -> dict[str, int]:
        """Table-size metrics for experiment E6."""
        return {
            "entries": len(self.entries),
            "conflicts": len(self.conflicts),
            "nonterminals": len(self.grammar),
            "terminals": len(self.grammar.tokens),
        }
