"""Concrete parse trees produced by the generated parsers.

A :class:`Node` is named after the nonterminal whose rule matched; its
children are nested nodes and :class:`~repro.lexer.token.Token` leaves in
source order.  The SQL AST builder (:mod:`repro.sql.ast_builder`) consumes
these trees, mirroring the paper's separation between generated syntax and
separately-implemented semantic actions.
"""

from __future__ import annotations

from typing import Iterator, Union

from ..lexer.token import Token

Child = Union["Node", Token]


class Node:
    """One parse-tree node: a nonterminal name plus ordered children."""

    __slots__ = ("name", "children")

    def __init__(self, name: str, children: list[Child] | None = None) -> None:
        self.name = name
        self.children: list[Child] = children if children is not None else []

    # -- navigation ---------------------------------------------------------

    def child(self, name: str) -> "Node | None":
        """First child node with the given rule name, if any."""
        for c in self.children:
            if isinstance(c, Node) and c.name == name:
                return c
        return None

    def children_named(self, name: str) -> list["Node"]:
        """All direct child nodes with the given rule name."""
        return [c for c in self.children if isinstance(c, Node) and c.name == name]

    def find_all(self, name: str) -> Iterator["Node"]:
        """All descendant nodes (including self) with the given rule name."""
        if self.name == name:
            yield self
        for c in self.children:
            if isinstance(c, Node):
                yield from c.find_all(name)

    def token(self, type_name: str) -> Token | None:
        """First direct child token of the given terminal type, if any."""
        for c in self.children:
            if isinstance(c, Token) and c.type == type_name:
                return c
        return None

    def tokens_of(self, type_name: str) -> list[Token]:
        """All direct child tokens of the given terminal type."""
        return [c for c in self.children if isinstance(c, Token) and c.type == type_name]

    def has_token(self, type_name: str) -> bool:
        return self.token(type_name) is not None

    def tokens(self) -> Iterator[Token]:
        """All leaf tokens below this node, in source order."""
        for c in self.children:
            if isinstance(c, Token):
                yield c
            else:
                yield from c.tokens()

    def node_children(self) -> list["Node"]:
        """Direct children that are nodes (skipping tokens)."""
        return [c for c in self.children if isinstance(c, Node)]

    # -- rendering ------------------------------------------------------------

    def text(self) -> str:
        """Reconstructed source text (single-space separated)."""
        return " ".join(t.text for t in self.tokens())

    def to_sexpr(self) -> str:
        """Lisp-style rendering, convenient for test assertions."""
        parts: list[str] = [self.name]
        for c in self.children:
            if isinstance(c, Token):
                parts.append(c.text if c.text else c.type)
            else:
                parts.append(c.to_sexpr())
        return "(" + " ".join(parts) + ")"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering for debugging."""
        pad = "  " * indent
        lines = [f"{pad}{self.name}"]
        for c in self.children:
            if isinstance(c, Token):
                lines.append(f"{pad}  {c.type} {c.text!r}")
            else:
                lines.append(c.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Node {self.name} with {len(self.children)} children>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.name == other.name and self.children == other.children
