"""Grammar coverage over the parse-program IR.

The paper's composition pipeline promises that a product accepts
*exactly* the selected feature set; this module supplies the measuring
half of that promise.  A :class:`CoverageMap` walks a compiled
:class:`~repro.parsing.program.ParseProgram` once and assigns a dense
integer id to every observable decision the interpreter can make:

* **rule entries** — one slot per interned rule id;
* **CHOICE alternatives** — one slot per alternative of every CHOICE
  instruction (the dispatch-table blocks, in declaration order);
* **decision edges** — two edges (*taken*/*skipped*) per OPT, LOOP, and
  SEPLOOP instruction.

A :class:`CoverageCollector` is the matching bank of array counters:
plain ``list[int]`` cells indexed by those ids, cheap enough to bump
from the interpreter's hot loop, and mergeable across threads so a
worker pool can count into private collectors and fold them together.

The map keys instrumentation points by *instruction object identity*
(``id(instr)``): program instruction tuples are built exactly once per
program (both by the compiler and by the JSON decoder) and CHOICE
dispatch tables share the very block objects the map enumerates, so an
identity lookup is both correct and the cheapest possible key.

Edge semantics (also documented in DESIGN.md):

* ``OPT``: *taken* when the optional content parsed, *skipped* when the
  guard rejected the lookahead or the attempt rolled back.
* ``LOOP``: *taken* when more than ``min`` iterations ran (the
  repetition was exercised beyond its floor), *skipped* when exactly
  ``min`` ran.
* ``SEPLOOP``: *taken* when at least two items parsed (the separator
  continuation ran), *skipped* otherwise (zero or one item).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .program import (
    OP_CALL,
    OP_CHOICE,
    OP_LOOP,
    OP_MATCH,
    OP_OPT,
    OP_SEPLOOP,
    OP_SEQ,
    ParseProgram,
)

#: Decision-point kinds, in the order :data:`DecisionPoint.kind` uses.
KIND_OPT = "opt"
KIND_LOOP = "loop"
KIND_SEPLOOP = "seploop"


@dataclass(frozen=True)
class ChoicePoint:
    """One CHOICE instruction: ``n_alts`` alternative slots from ``base``.

    Attributes:
        index: Dense id of this choice point.
        rule_id: Interned id of the rule the instruction lives in.
        label: Stable human-readable name (``rule/choice[k]``).
        base: First slot in the collector's alternative-counter array.
        firsts: FIRST set of each alternative — what a generator must
            emit to steer the parser into that alternative.
    """

    index: int
    rule_id: int
    label: str
    base: int
    firsts: tuple[frozenset, ...]

    @property
    def n_alts(self) -> int:
        return len(self.firsts)


@dataclass(frozen=True)
class DecisionPoint:
    """One OPT/LOOP/SEPLOOP instruction with a taken and a skipped edge."""

    index: int
    rule_id: int
    kind: str
    label: str
    first: frozenset


class CoverageMap:
    """Dense instrumentation-point numbering for one parse program.

    The map is immutable and derived deterministically from the program
    (rules in interned order, instructions in execution order), so two
    maps over equal programs number every point identically — which is
    what makes serialized coverage comparable across processes.
    """

    __slots__ = (
        "program",
        "choices",
        "decisions",
        "n_alt_slots",
        "slot_of_block",
        "decision_of_instr",
    )

    def __init__(self, program: ParseProgram) -> None:
        self.program = program
        choices: list[ChoicePoint] = []
        decisions: list[DecisionPoint] = []
        slot_of_block: dict[int, int] = {}
        decision_of_instr: dict[int, int] = {}
        n_alt_slots = 0

        def walk(instr, rule_id: int, rule_name: str) -> None:
            nonlocal n_alt_slots
            op = instr[0]
            if op in (OP_MATCH, OP_CALL):
                return
            if op == OP_SEQ:
                for item in instr[1]:
                    walk(item, rule_id, rule_name)
                return
            if op == OP_CHOICE:
                blocks, firsts = instr[4], instr[5]
                point = ChoicePoint(
                    index=len(choices),
                    rule_id=rule_id,
                    label=f"{rule_name}/choice[{len(choices)}]",
                    base=n_alt_slots,
                    firsts=tuple(firsts),
                )
                choices.append(point)
                for offset, block in enumerate(blocks):
                    slot_of_block[id(block)] = n_alt_slots + offset
                n_alt_slots += len(blocks)
                for block in blocks:
                    walk(block, rule_id, rule_name)
                return
            if op == OP_OPT:
                kind, first = KIND_OPT, instr[2]
            elif op == OP_LOOP:
                kind, first = KIND_LOOP, instr[2]
            else:  # OP_SEPLOOP
                kind, first = KIND_SEPLOOP, instr[3]
            decision_of_instr[id(instr)] = len(decisions)
            decisions.append(
                DecisionPoint(
                    index=len(decisions),
                    rule_id=rule_id,
                    kind=kind,
                    label=f"{rule_name}/{kind}[{len(decisions)}]",
                    first=first,
                )
            )
            walk(instr[1], rule_id, rule_name)
            if op == OP_SEPLOOP:
                walk(instr[2], rule_id, rule_name)

        for rule_id, body in enumerate(program.code):
            walk(body, rule_id, program.rule_names[rule_id])

        self.choices = tuple(choices)
        self.decisions = tuple(decisions)
        self.n_alt_slots = n_alt_slots
        self.slot_of_block = slot_of_block
        self.decision_of_instr = decision_of_instr

    # -- metrics -----------------------------------------------------------

    @property
    def n_rules(self) -> int:
        return len(self.program.rule_names)

    def size(self) -> dict[str, int]:
        return {
            "rules": self.n_rules,
            "choice_points": len(self.choices),
            "alternative_slots": self.n_alt_slots,
            "decision_points": len(self.decisions),
            "edges": 2 * len(self.decisions),
        }

    def collector(self) -> "CoverageCollector":
        return CoverageCollector(self)

    def __repr__(self) -> str:
        size = self.size()
        return (
            f"<CoverageMap {self.program.grammar_name!r}: "
            f"{size['rules']} rules, {size['alternative_slots']} alt slots, "
            f"{size['edges']} edges>"
        )


class CoverageCollector:
    """Array counters for one :class:`CoverageMap`.

    Counter cells are bumped lock-free from the interpreter (each parser
    — and therefore each thread — owns its own collector); :meth:`merge`
    is the synchronized rendezvous that folds a private collector into a
    shared one.
    """

    __slots__ = ("map", "rules", "alts", "taken", "skipped", "_lock")

    def __init__(self, coverage_map: CoverageMap) -> None:
        self.map = coverage_map
        self.rules = [0] * coverage_map.n_rules
        self.alts = [0] * coverage_map.n_alt_slots
        n_decisions = len(coverage_map.decisions)
        self.taken = [0] * n_decisions
        self.skipped = [0] * n_decisions
        self._lock = threading.Lock()

    # -- accumulation ------------------------------------------------------

    def merge(self, other: "CoverageCollector") -> "CoverageCollector":
        """Fold another collector's counts into this one (thread-safe).

        Both collectors must be keyed by the same program; maps over
        different programs number points differently, so merging them
        would silently corrupt every counter.
        """
        if other.map.program is not self.map.program and (
            other.map.program.fingerprint is None
            or other.map.program.fingerprint != self.map.program.fingerprint
        ):
            raise ValueError(
                "cannot merge coverage across different parse programs "
                f"({other.map.program.grammar_name!r} into "
                f"{self.map.program.grammar_name!r})"
            )
        with self._lock:
            for array, incoming in (
                (self.rules, other.rules),
                (self.alts, other.alts),
                (self.taken, other.taken),
                (self.skipped, other.skipped),
            ):
                for index, value in enumerate(incoming):
                    if value:
                        array[index] += value
        return self

    def reset(self) -> None:
        with self._lock:
            for array in (self.rules, self.alts, self.taken, self.skipped):
                for index in range(len(array)):
                    array[index] = 0

    # -- coverage queries --------------------------------------------------

    def rules_covered(self) -> int:
        return sum(1 for count in self.rules if count)

    def alts_covered(self) -> int:
        return sum(1 for count in self.alts if count)

    def edges_covered(self) -> int:
        return sum(1 for count in self.taken if count) + sum(
            1 for count in self.skipped if count
        )

    def counts(self) -> dict[str, tuple[int, int]]:
        """``{dimension: (covered, total)}`` for the three dimensions."""
        return {
            "rules": (self.rules_covered(), len(self.rules)),
            "alternatives": (self.alts_covered(), len(self.alts)),
            "edges": (self.edges_covered(), 2 * len(self.taken)),
        }

    def score(self) -> int:
        """Total distinct covered points — monotone under more parsing.

        The guided generator's "coverage went dry" check compares this
        before and after a round of inputs.
        """
        return self.rules_covered() + self.alts_covered() + self.edges_covered()

    def uncovered_rules(self) -> list[str]:
        names = self.map.program.rule_names
        return [names[i] for i, count in enumerate(self.rules) if not count]

    def uncovered_alternatives(self) -> list[tuple["ChoicePoint", int]]:
        """Unselected ``(choice point, alternative index)`` pairs."""
        missing: list[tuple[ChoicePoint, int]] = []
        for point in self.map.choices:
            for offset in range(point.n_alts):
                if not self.alts[point.base + offset]:
                    missing.append((point, offset))
        return missing

    def uncovered_edges(self) -> list[tuple["DecisionPoint", str]]:
        """Unexercised ``(decision point, "taken"|"skipped")`` pairs."""
        missing: list[tuple[DecisionPoint, str]] = []
        for point in self.map.decisions:
            if not self.taken[point.index]:
                missing.append((point, "taken"))
            if not self.skipped[point.index]:
                missing.append((point, "skipped"))
        return missing

    def __repr__(self) -> str:
        counts = self.counts()
        parts = ", ".join(
            f"{dim} {covered}/{total}"
            for dim, (covered, total) in counts.items()
        )
        return f"<CoverageCollector {self.map.program.grammar_name!r}: {parts}>"
