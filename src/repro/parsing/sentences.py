"""Random sentence generation from composed grammars.

Given any composed grammar, :class:`SentenceGenerator` derives random
strings of the grammar's language.  This powers the property-based
cross-checks in the test suite: every generated sentence must be accepted
by both the interpreting parser and the generated standalone parser —
for every dialect of the product line.

Terminal text comes from the token set: keywords and literal tokens print
their fixed text; pattern tokens (identifiers, numbers, strings) draw from
small sample pools.  Depth is bounded by preferring non-recursive
alternatives once a budget is exhausted, so generation terminates even on
deeply recursive grammars.
"""

from __future__ import annotations

import random

from ..errors import GrammarError
from ..grammar.expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from ..grammar.grammar import Grammar

#: Sample lexemes for the standard pattern tokens.
_PATTERN_SAMPLES: dict[str, list[str]] = {
    "IDENTIFIER": ["tbl", "col_a", "col_b", "x1", "payload", "zz"],
    "QUOTED_IDENTIFIER": ['"Mixed Case"', '"t 2"'],
    "UNSIGNED_INTEGER": ["0", "7", "42", "1024"],
    "DECIMAL_LITERAL": ["3.14", "0.5", "99.00"],
    "APPROXIMATE_LITERAL": ["1E3", "2.5e-2"],
    "STRING_LITERAL": ["'abc'", "'it''s'", "''"],
    "BINARY_STRING_LITERAL": ["X'0AFF'", "x''"],
    "NATIONAL_STRING_LITERAL": ["N'text'"],
    "UNICODE_STRING_LITERAL": ["U&'text'"],
}


def build_terminal_table(tokens) -> dict[str, list[str]]:
    """Sample lexemes per terminal name for a grammar's token set.

    Keywords and literal tokens print their fixed text; pattern tokens
    draw from :data:`_PATTERN_SAMPLES`.  Shared by the grammar-walking
    :class:`SentenceGenerator` and the program-walking coverage-guided
    workload generator.
    """
    table: dict[str, list[str]] = {}
    for definition in tokens:
        if definition.skip:
            continue
        if definition.kind in ("keyword", "literal"):
            table[definition.name] = [definition.pattern]
        else:
            samples = _PATTERN_SAMPLES.get(definition.name)
            if samples:
                table[definition.name] = samples
    return table


class SentenceGenerator:
    """Derives random sentences from a grammar.

    Args:
        grammar: A closed, composed grammar.
        seed: RNG seed for reproducibility.
        max_depth: Budget after which the generator prefers the cheapest
            (minimal-size) alternatives to force termination.
    """

    def __init__(self, grammar: Grammar, seed: int = 0, max_depth: int = 40) -> None:
        self.grammar = grammar
        self.rng = random.Random(seed)
        self.max_depth = max_depth
        self._terminal_text = self._build_terminal_table()
        self._min_cost = self._compute_min_costs()

    # -- public ------------------------------------------------------------

    def sentence(self, start: str | None = None) -> str:
        """One random sentence, whitespace-joined."""
        rule = start or self.grammar.start
        if rule is None:
            raise GrammarError("grammar has no start rule")
        tokens: list[str] = []
        self._emit_rule(rule, tokens, depth=0)
        return " ".join(tokens)

    def sentences(self, count: int, start: str | None = None) -> list[str]:
        return [self.sentence(start) for _ in range(count)]

    # -- terminal text -----------------------------------------------------------

    def _build_terminal_table(self) -> dict[str, list[str]]:
        return build_terminal_table(self.grammar.tokens)

    def _terminal(self, name: str) -> str:
        try:
            choices = self._terminal_text[name]
        except KeyError:
            raise GrammarError(
                f"no sample text for terminal {name!r}"
            ) from None
        return self.rng.choice(choices)

    # -- minimal-cost analysis (termination) ------------------------------------------

    def _compute_min_costs(self) -> dict[str, int]:
        """Fixpoint: minimum number of terminals derivable from each rule."""
        INF = 10**9
        costs = {name: INF for name in self.grammar.rule_names()}
        changed = True
        while changed:
            changed = False
            for rule in self.grammar:
                best = min(
                    (self._element_cost(a, costs) for a in rule.alternatives),
                    default=INF,
                )
                if best < costs[rule.name]:
                    costs[rule.name] = best
                    changed = True
        return costs

    def _element_cost(self, element: Element, costs: dict[str, int]) -> int:
        if isinstance(element, Tok):
            return 1
        if isinstance(element, Ref):
            return costs.get(element.name, 10**9)
        if isinstance(element, Opt):
            return 0
        if isinstance(element, Rep):
            if element.min == 0:
                return 0
            return self._element_cost(element.inner, costs)
        if isinstance(element, Seq):
            return sum(self._element_cost(i, costs) for i in element.items)
        if isinstance(element, Choice):
            return min(
                (self._element_cost(a, costs) for a in element.alternatives),
                default=10**9,
            )
        raise TypeError(f"unknown element: {element!r}")

    # -- emission ------------------------------------------------------------------------

    def _emit_rule(self, name: str, out: list[str], depth: int) -> None:
        rule = self.grammar.rule(name)
        self._emit_choice(list(rule.alternatives), out, depth + 1)

    def _emit_choice(self, alternatives: list[Element], out: list[str], depth: int) -> None:
        if depth > self.max_depth:
            # force termination: pick a cheapest alternative
            costs = {
                id(a): self._element_cost(a, self._min_cost) for a in alternatives
            }
            cheapest = min(costs.values())
            pool = [a for a in alternatives if costs[id(a)] == cheapest]
        else:
            pool = alternatives
        self._emit_element(self.rng.choice(pool), out, depth)

    def _emit_element(self, element: Element, out: list[str], depth: int) -> None:
        if isinstance(element, Tok):
            out.append(self._terminal(element.name))
            return
        if isinstance(element, Ref):
            self._emit_rule(element.name, out, depth)
            return
        if isinstance(element, Seq):
            for item in element.items:
                self._emit_element(item, out, depth)
            return
        if isinstance(element, Opt):
            if depth <= self.max_depth and self.rng.random() < 0.4:
                self._emit_element(element.inner, out, depth + 1)
            return
        if isinstance(element, Rep):
            count = element.min
            if depth <= self.max_depth:
                while count < 3 and self.rng.random() < 0.35:
                    count += 1
            count = max(count, element.min)
            for index in range(count):
                if index > 0 and element.separator is not None:
                    self._emit_element(element.separator, out, depth + 1)
                self._emit_element(element.inner, out, depth + 1)
            return
        if isinstance(element, Choice):
            self._emit_choice(list(element.alternatives), out, depth + 1)
            return
        raise TypeError(f"unknown element: {element!r}")


def generate_sentences(
    grammar: Grammar, count: int = 20, seed: int = 0, start: str | None = None
) -> list[str]:
    """Convenience wrapper around :class:`SentenceGenerator`."""
    return SentenceGenerator(grammar, seed=seed).sentences(count, start=start)
