"""Grammar-coverage–guided conformance: corpus, runner, coverage reports.

Public API::

    from repro.conformance import (
        ConformanceCase, Corpus, load_corpus, parse_case_file,
        ConformanceRunner, ConformanceReport, run_conformance,
        CoverageReport, CoverageSuiteReport,
    )
"""

from .corpus import (
    CASE_SUFFIX,
    ConformanceCase,
    Corpus,
    CorpusError,
    default_corpus_dir,
    load_corpus,
    parse_case_file,
)
from .report import (
    COVERAGE_REPORT_VERSION,
    CoverageReport,
    CoverageSuiteReport,
    DimensionCount,
    FeatureRollup,
)
from .runner import (
    CONFORMANCE_REPORT_VERSION,
    CaseResult,
    ConformanceReport,
    ConformanceRunner,
    run_conformance,
)

__all__ = [
    "CASE_SUFFIX",
    "CONFORMANCE_REPORT_VERSION",
    "COVERAGE_REPORT_VERSION",
    "CaseResult",
    "ConformanceCase",
    "ConformanceReport",
    "ConformanceRunner",
    "Corpus",
    "CorpusError",
    "CoverageReport",
    "CoverageSuiteReport",
    "DimensionCount",
    "FeatureRollup",
    "default_corpus_dir",
    "load_corpus",
    "parse_case_file",
    "run_conformance",
]
