"""Coverage reports: what a corpus exercised of a composed grammar.

:class:`CoverageReport` condenses one product's
:class:`~repro.parsing.coverage.CoverageCollector` into the three
coverage dimensions (rule entries, CHOICE alternatives, decision edges),
rolls every dimension up per contributing feature using the composition
trace's origin provenance, and names what is still uncovered — so "rule
``with_clause`` was never entered" reads as "feature ``WithClause`` is
untested", which is the actionable form.

:class:`CoverageSuiteReport` aggregates reports across dialects and
carries the ``--fail-under`` gate.  Both render as text and as
versioned JSON (``kind: repro-coverage-report``, schema documented in
DESIGN.md); the JSON form is what CI uploads as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

#: JSON schema version; bump on incompatible layout changes so downstream
#: consumers (CI trend scripts) never misread an old artifact.
COVERAGE_REPORT_VERSION = 1

#: Feature label for rules composed outside a product line (no provenance).
UNATTRIBUTED = "<unattributed>"


def report_envelope(kind: str, version: int, payload: dict) -> dict:
    """Wrap a report payload in the shared ``kind``/``version`` envelope.

    Every versioned JSON report this repo emits (coverage, conformance,
    lint) leads with the same two discriminator fields so CI artifact
    consumers can dispatch on ``kind`` and refuse layouts they predate.
    """
    return {"kind": kind, "version": version, **payload}


def parse_report_envelope(text: str, kind: str, version: int) -> dict:
    """Decode and validate one versioned report artifact.

    Raises ``ValueError`` when ``text`` is not JSON, is not a report of
    the expected ``kind``, or carries an incompatible ``version`` — the
    same contract :meth:`repro.parsing.program.ParseProgram.from_json`
    applies to IR artifacts.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a {kind} artifact: {error}") from None
    if not isinstance(payload, dict) or payload.get("kind") != kind:
        raise ValueError(f"not a {kind} artifact")
    if payload.get("version") != version:
        raise ValueError(
            f"{kind} version {payload.get('version')!r} != {version}"
        )
    return payload


@dataclass(frozen=True)
class DimensionCount:
    """Covered-vs-total for one coverage dimension."""

    covered: int
    total: int

    @property
    def pct(self) -> float:
        """Percentage covered; an empty dimension counts as fully covered."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.covered / self.total

    def as_dict(self) -> dict:
        return {
            "covered": self.covered,
            "total": self.total,
            "pct": round(self.pct, 2),
        }

    def __add__(self, other: "DimensionCount") -> "DimensionCount":
        return DimensionCount(
            self.covered + other.covered, self.total + other.total
        )


@dataclass(frozen=True)
class FeatureRollup:
    """One feature's share of the three dimensions."""

    feature: str
    rules: DimensionCount
    alternatives: DimensionCount
    edges: DimensionCount
    uncovered_rules: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "feature": self.feature,
            "rules": self.rules.as_dict(),
            "alternatives": self.alternatives.as_dict(),
            "edges": self.edges.as_dict(),
            "uncovered_rules": list(self.uncovered_rules),
        }


class CoverageReport:
    """Coverage of one composed product, with per-feature rollups.

    Build with :meth:`of`; render with :meth:`render` (text) or
    :meth:`to_dict`/:meth:`to_json` (versioned JSON).
    """

    def __init__(
        self,
        name: str,
        fingerprint: str | None,
        rules: DimensionCount,
        alternatives: DimensionCount,
        edges: DimensionCount,
        features: tuple[FeatureRollup, ...],
        uncovered_rules: tuple[tuple[str, str], ...],
        uncovered_alternatives: tuple[dict, ...],
        uncovered_edges: tuple[dict, ...],
        inputs: int = 0,
    ) -> None:
        self.name = name
        self.fingerprint = fingerprint
        self.rules = rules
        self.alternatives = alternatives
        self.edges = edges
        self.features = features
        self.uncovered_rules = uncovered_rules
        self.uncovered_alternatives = uncovered_alternatives
        self.uncovered_edges = uncovered_edges
        self.inputs = inputs

    @classmethod
    def of(cls, product, collector, inputs: int = 0) -> "CoverageReport":
        """Condense a collector over ``product``'s program into a report.

        ``product`` supplies the name, fingerprint, and — when it was
        composed through a product line — the rule-origin provenance the
        per-feature rollups key on.
        """
        coverage_map = collector.map
        program = coverage_map.program
        rule_names = program.rule_names
        origins = {}
        if hasattr(product, "rule_origins"):
            origins = product.rule_origins()
        feature_of = {
            name: origins.get(name, UNATTRIBUTED) for name in rule_names
        }

        counts = collector.counts()
        per_feature: dict[str, dict[str, list[int]]] = {}

        def bucket(feature: str) -> dict[str, list[int]]:
            return per_feature.setdefault(
                feature,
                {"rules": [0, 0], "alternatives": [0, 0], "edges": [0, 0]},
            )

        feature_uncovered: dict[str, list[str]] = {}
        for rule_id, name in enumerate(rule_names):
            cell = bucket(feature_of[name])["rules"]
            cell[1] += 1
            if collector.rules[rule_id]:
                cell[0] += 1
            else:
                feature_uncovered.setdefault(feature_of[name], []).append(name)
        for point in coverage_map.choices:
            cell = bucket(feature_of[rule_names[point.rule_id]])["alternatives"]
            for offset in range(point.n_alts):
                cell[1] += 1
                if collector.alts[point.base + offset]:
                    cell[0] += 1
        for point in coverage_map.decisions:
            cell = bucket(feature_of[rule_names[point.rule_id]])["edges"]
            cell[1] += 2
            if collector.taken[point.index]:
                cell[0] += 1
            if collector.skipped[point.index]:
                cell[0] += 1

        features = tuple(
            FeatureRollup(
                feature=feature,
                rules=DimensionCount(*cells["rules"]),
                alternatives=DimensionCount(*cells["alternatives"]),
                edges=DimensionCount(*cells["edges"]),
                uncovered_rules=tuple(feature_uncovered.get(feature, ())),
            )
            for feature, cells in sorted(per_feature.items())
        )

        uncovered_rules = tuple(
            (name, feature_of[name]) for name in collector.uncovered_rules()
        )
        uncovered_alternatives = tuple(
            {
                "rule": rule_names[point.rule_id],
                "feature": feature_of[rule_names[point.rule_id]],
                "point": point.label,
                "alternative": offset,
                "first": sorted(point.firsts[offset]),
            }
            for point, offset in collector.uncovered_alternatives()
        )
        uncovered_edges = tuple(
            {
                "rule": rule_names[point.rule_id],
                "feature": feature_of[rule_names[point.rule_id]],
                "point": point.label,
                "kind": point.kind,
                "edge": edge,
            }
            for point, edge in collector.uncovered_edges()
        )

        fingerprint = getattr(product, "fingerprint", None)
        digest = getattr(fingerprint, "digest", None)
        return cls(
            name=getattr(product, "name", program.grammar_name),
            fingerprint=digest,
            rules=DimensionCount(*counts["rules"]),
            alternatives=DimensionCount(*counts["alternatives"]),
            edges=DimensionCount(*counts["edges"]),
            features=features,
            uncovered_rules=uncovered_rules,
            uncovered_alternatives=uncovered_alternatives,
            uncovered_edges=uncovered_edges,
            inputs=inputs,
        )

    # -- rendering ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "inputs": self.inputs,
            "rules": self.rules.as_dict(),
            "alternatives": self.alternatives.as_dict(),
            "edges": self.edges.as_dict(),
            "features": [rollup.as_dict() for rollup in self.features],
            "uncovered": {
                "rules": [
                    {"rule": rule, "feature": feature}
                    for rule, feature in self.uncovered_rules
                ],
                "alternatives": list(self.uncovered_alternatives),
                "edges": list(self.uncovered_edges),
            },
        }

    def render(self, max_uncovered: int = 12) -> str:
        lines = [
            f"coverage — {self.name} "
            f"({self.inputs} inputs, fingerprint "
            f"{self.fingerprint[:12] if self.fingerprint else '<none>'})",
            f"  rules         {self._bar(self.rules)}",
            f"  alternatives  {self._bar(self.alternatives)}",
            f"  edges         {self._bar(self.edges)}",
        ]
        weakest = sorted(
            (r for r in self.features if r.rules.total),
            key=lambda r: (r.rules.pct, r.feature),
        )[:5]
        if weakest and weakest[0].rules.pct < 100.0:
            lines.append("  weakest features (rule coverage):")
            for rollup in weakest:
                if rollup.rules.pct == 100.0:
                    break
                lines.append(
                    f"    {rollup.feature:30} {rollup.rules.covered}/"
                    f"{rollup.rules.total} rules"
                )
        if self.uncovered_rules:
            lines.append(
                f"  uncovered rules ({len(self.uncovered_rules)}):"
            )
            for rule, feature in self.uncovered_rules[:max_uncovered]:
                lines.append(f"    {rule}  [from feature {feature}]")
            if len(self.uncovered_rules) > max_uncovered:
                lines.append(
                    f"    … +{len(self.uncovered_rules) - max_uncovered} more"
                )
        return "\n".join(lines)

    @staticmethod
    def _bar(count: DimensionCount, width: int = 20) -> str:
        filled = int(round(width * count.pct / 100.0))
        bar = "#" * filled + "-" * (width - filled)
        return f"[{bar}] {count.covered:>4}/{count.total:<4} {count.pct:6.2f}%"


class CoverageSuiteReport:
    """Coverage across several dialects, plus the CI gate."""

    def __init__(self, reports: Iterable[CoverageReport]) -> None:
        self.reports = list(reports)

    # -- aggregation -------------------------------------------------------

    def overall(self) -> dict[str, DimensionCount]:
        totals = {
            "rules": DimensionCount(0, 0),
            "alternatives": DimensionCount(0, 0),
            "edges": DimensionCount(0, 0),
        }
        for report in self.reports:
            totals["rules"] += report.rules
            totals["alternatives"] += report.alternatives
            totals["edges"] += report.edges
        return totals

    def rule_coverage_pct(self) -> float:
        """The gated number: aggregate rule coverage across all reports."""
        return self.overall()["rules"].pct

    def gate(self, fail_under: float) -> bool:
        """True when aggregate rule coverage meets the threshold."""
        return self.rule_coverage_pct() >= fail_under

    # -- rendering ---------------------------------------------------------

    def to_dict(self) -> dict:
        overall = self.overall()
        return report_envelope(
            "repro-coverage-report",
            COVERAGE_REPORT_VERSION,
            {
                "dialects": [report.to_dict() for report in self.reports],
                "overall": {
                    dimension: count.as_dict()
                    for dimension, count in overall.items()
                },
            },
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        sections = [report.render() for report in self.reports]
        overall = self.overall()
        sections.append(
            "overall: "
            + ", ".join(
                f"{dimension} {count.covered}/{count.total} "
                f"({count.pct:.2f}%)"
                for dimension, count in overall.items()
            )
        )
        return "\n\n".join(sections)
