"""Drive the conformance corpus through every registered parse backend.

The runner is the differential half of the conformance subsystem: each
case's SQL runs through every backend in the
:mod:`repro.parsing.backends` registry.  Backends carrying the full
diagnostics surface (interpreter, compiled) get the case's diagnostic
assertions — code, message, hint — checked against
:meth:`~repro.parsing.parser.Parser.parse_with_diagnostics`; the
generated standalone module checks the accept/reject boundary only.  A
dialect disagreement between any two backends is itself a conformance
failure, independent of what the case expected.

With ``collect_coverage`` on, the interpreter runs instrumented and the
per-dialect :class:`~repro.parsing.coverage.CoverageCollector`s are kept
on the runner, so one corpus pass yields both the pass/fail verdicts and
the coverage feeding :class:`~repro.conformance.report.CoverageReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..parsing.backends import (
    COMPILED,
    GENERATED,
    INTERPRETER,
    backend_names,
    get_backend,
)
from .corpus import ConformanceCase, Corpus, load_corpus

#: JSON schema version for conformance reports.
CONFORMANCE_REPORT_VERSION = 1

#: Backend label for translation cases (they run through the transpiler
#: pipeline, not a raw parse).
TRANSPILER = "transpiler"


@dataclass(frozen=True)
class CaseResult:
    """One case on one dialect through one backend."""

    case: str
    dialect: str
    backend: str
    expect: str
    passed: bool
    failures: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "case": self.case,
            "dialect": self.dialect,
            "backend": self.backend,
            "expect": self.expect,
            "passed": self.passed,
            "failures": list(self.failures),
        }


@dataclass
class ConformanceReport:
    """Every case result, plus the aggregate verdict."""

    results: list[CaseResult] = field(default_factory=list)
    dialects: tuple[str, ...] = ()
    cases: int = 0

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.results)

    def failed(self) -> list[CaseResult]:
        return [result for result in self.results if not result.passed]

    def counts(self) -> dict[str, int]:
        failed = len(self.failed())
        return {
            "checks": len(self.results),
            "passed": len(self.results) - failed,
            "failed": failed,
        }

    def to_dict(self) -> dict:
        from .report import report_envelope

        return report_envelope(
            "repro-conformance-report",
            CONFORMANCE_REPORT_VERSION,
            {
                "dialects": list(self.dialects),
                "cases": self.cases,
                **self.counts(),
                "results": [result.as_dict() for result in self.results],
            },
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self, max_failures: int = 20) -> str:
        counts = self.counts()
        lines = [
            f"conformance — {self.cases} cases × "
            f"{len(self.dialects)} dialects: "
            f"{counts['passed']}/{counts['checks']} checks passed"
        ]
        failures = self.failed()
        for result in failures[:max_failures]:
            lines.append(
                f"  FAIL {result.case} [{result.dialect}/{result.backend}]"
            )
            for failure in result.failures:
                lines.append(f"       {failure}")
        if len(failures) > max_failures:
            lines.append(f"  … +{len(failures) - max_failures} more failures")
        return "\n".join(lines)


class ConformanceRunner:
    """Run a corpus against preset dialects, every registered backend.

    Args:
        corpus: The cases to run (defaults to the in-repo ``corpus/``).
        dialects: Preset dialect names to drive (defaults to every
            preset the corpus mentions, in preset order).
        backends: Which backends to check (defaults to every backend in
            the :mod:`repro.parsing.backends` registry).  Diagnostic
            assertions apply on backends with the full diagnostics
            surface (interpreter, compiled); the generated backend
            checks the accept/reject boundary.
        collect_coverage: Run the interpreter instrumented and keep the
            per-dialect collectors on :attr:`collectors`.
        cache_dir: On-disk artifact cache directory.  When set, dialects
            resolve through a fingerprint-keyed registry so the parse
            program, closure source, and generated module are *loaded*
            from ``<digest>.*`` artifacts when fresh instead of being
            recompiled — this is what lets CI's per-backend conformance
            matrix share one composition per dialect across steps.
    """

    def __init__(
        self,
        corpus: Corpus | None = None,
        dialects: Sequence[str] | None = None,
        backends: Iterable[str] | None = None,
        collect_coverage: bool = False,
        cache_dir: str | None = None,
    ) -> None:
        from ..sql import dialect_names

        self.corpus = corpus if corpus is not None else load_corpus()
        presets = dialect_names()
        if dialects is None:
            mentioned = set(self.corpus.dialects())
            dialects = [name for name in presets if name in mentioned]
        else:
            unknown = [name for name in dialects if name not in presets]
            if unknown:
                raise ValueError(
                    f"unknown dialects {unknown!r} "
                    f"(presets: {', '.join(presets)})"
                )
        self.dialects = tuple(dialects)
        if backends is None:
            backends = backend_names()
        else:
            backends = tuple(backends)
            known = backend_names()
            unknown = [name for name in backends if name not in known]
            if unknown:
                raise ValueError(
                    f"unknown backends {unknown!r} "
                    f"(registered: {', '.join(known)})"
                )
        self.backends = tuple(backends)
        self.collect_coverage = collect_coverage
        self.cache_dir = cache_dir
        self._registry = None
        if cache_dir is not None:
            from ..service.registry import ParserRegistry
            from ..sql.product_line import build_sql_product_line

            self._registry = ParserRegistry(
                build_sql_product_line(), cache_dir=cache_dir
            )
        #: dialect -> ComposedProduct, populated by :meth:`run`.
        self.products: dict[str, object] = {}
        #: dialect -> compiled ParseProgram (coverage collectors are
        #: keyed to these exact objects).
        self.programs: dict[str, object] = {}
        #: dialect -> CoverageCollector when ``collect_coverage``.
        self.collectors: dict[str, object] = {}

    def run(self) -> ConformanceReport:
        report = ConformanceReport(
            dialects=self.dialects, cases=len(self.corpus)
        )
        for dialect in self.dialects:
            self._run_dialect(dialect, report)
        return report

    # -- per-dialect machinery ---------------------------------------------

    def _run_dialect(self, dialect: str, report: ConformanceReport) -> None:
        from ..sql import build_dialect

        entry = None
        if self._registry is not None:
            # artifact-cached path: an unchanged fingerprint loads the
            # parse program (and below, closures / generated source)
            # from disk instead of recompiling it
            from ..sql import dialect_features

            entry = self._registry.get(dialect_features(dialect))
            product = entry.product
            program = self._registry.parse_program(entry)
        else:
            product = build_dialect(dialect)
            program = product.program()
        self.products[dialect] = product
        self.programs[dialect] = program
        parser = None
        if INTERPRETER in self.backends or self.collect_coverage:
            parser = get_backend(INTERPRETER).build(product, program=program)
            if self.collect_coverage:
                self.collectors[dialect] = parser.enable_coverage()
        compiled = None
        if COMPILED in self.backends:
            if entry is not None:
                compiled = entry.thread_compiled_parser(
                    self._registry.cache_dir
                )
            else:
                compiled = get_backend(COMPILED).build(
                    product, program=program
                )
        generated = None
        if GENERATED in self.backends:
            if entry is not None:
                from ..parsing.backends import GeneratedParser

                generated = GeneratedParser(
                    self._registry.generated_module(entry)
                )
            else:
                generated = get_backend(GENERATED).build(
                    product, program=program
                )
        for case in self.corpus.for_dialect(dialect):
            if case.is_translation:
                # translation cases assert on the transpiler pipeline
                # (source parse → capability gap → render → verify);
                # the listed dialect is the translation's *source*
                if INTERPRETER in self.backends:
                    report.results.append(
                        self._check_translation(case, dialect)
                    )
                continue
            if INTERPRETER in self.backends:
                report.results.append(
                    self._check_diagnostics(
                        case, dialect, parser, INTERPRETER
                    )
                )
            if compiled is not None:
                # the compiled backend carries the full diagnostics
                # surface, so it faces the same assertions as the
                # interpreter — not just the accept/reject boundary
                report.results.append(
                    self._check_diagnostics(case, dialect, compiled, COMPILED)
                )
            if generated is not None:
                report.results.append(
                    self._check_generated(case, dialect, generated)
                )

    @staticmethod
    def _check_diagnostics(
        case: ConformanceCase, dialect: str, parser, backend: str
    ) -> CaseResult:
        outcome = parser.parse_with_diagnostics(case.sql)
        accepted = outcome.ok
        failures: list[str] = []
        if accepted != case.expects_accept:
            if case.expects_accept:
                first = next(
                    (d for d in outcome.diagnostics.sorted() if d.is_error),
                    None,
                )
                detail = f": {first.format()}" if first else ""
                failures.append(f"expected accept, got rejection{detail}")
            else:
                failures.append("expected rejection, but the input parsed")
        elif not case.expects_accept:
            errors = [d for d in outcome.diagnostics if d.is_error]
            codes = {d.code for d in errors}
            if case.code is not None and case.code not in codes:
                failures.append(
                    f"expected code {case.code}, got {sorted(codes)}"
                )
            if case.message is not None and not any(
                case.message in d.message for d in errors
            ):
                failures.append(
                    f"no diagnostic message contains {case.message!r}"
                )
            if case.hint is not None and not any(
                case.hint in hint for d in errors for hint in d.hints
            ):
                failures.append(f"no diagnostic hint contains {case.hint!r}")
        return CaseResult(
            case=case.name,
            dialect=dialect,
            backend=backend,
            expect=case.expect,
            passed=not failures,
            failures=tuple(failures),
        )

    @staticmethod
    def _check_translation(case: ConformanceCase, dialect: str) -> CaseResult:
        from ..errors import ReproError
        from ..transpile import translate

        failures: list[str] = []
        error: ReproError | None = None
        result = None
        try:
            result = translate(case.sql, dialect, case.to)
        except ReproError as exc:
            error = exc
        if case.expect == "translates-to":
            if error is not None:
                diag = error.to_diagnostic()
                failures.append(
                    f"expected translation to {case.to!r}, got "
                    f"[{diag.code}] {diag.message}"
                )
            else:
                if case.output is not None and result.sql != case.output:
                    failures.append(
                        f"expected output {case.output!r}, got {result.sql!r}"
                    )
                if case.rewrite is not None and not any(
                    case.rewrite in note for note in result.rewrites
                ):
                    failures.append(
                        f"no rewrite note contains {case.rewrite!r} "
                        f"(notes: {list(result.rewrites)})"
                    )
        else:  # untranslatable
            if error is None:
                failures.append(
                    f"expected the translation to {case.to!r} to be "
                    f"refused, but it produced {result.sql!r}"
                )
            else:
                diag = error.to_diagnostic()
                if case.code is not None and diag.code != case.code:
                    failures.append(
                        f"expected code {case.code}, got {diag.code}"
                    )
                if case.message is not None and case.message not in diag.message:
                    failures.append(
                        f"diagnostic message does not contain "
                        f"{case.message!r}"
                    )
                if case.hint is not None and not any(
                    case.hint in hint for hint in diag.hints
                ):
                    failures.append(
                        f"no diagnostic hint contains {case.hint!r}"
                    )
        return CaseResult(
            case=case.name,
            dialect=dialect,
            backend=TRANSPILER,
            expect=case.expect,
            passed=not failures,
            failures=tuple(failures),
        )

    @staticmethod
    def _check_generated(
        case: ConformanceCase, dialect: str, module
    ) -> CaseResult:
        accepted = module.accepts(case.sql)
        failures: list[str] = []
        if accepted != case.expects_accept:
            failures.append(
                f"generated parser {'accepted' if accepted else 'rejected'} "
                f"but case expects {case.expect}"
            )
        return CaseResult(
            case=case.name,
            dialect=dialect,
            backend=GENERATED,
            expect=case.expect,
            passed=not failures,
            failures=tuple(failures),
        )


def run_conformance(
    corpus: Corpus | None = None,
    dialects: Sequence[str] | None = None,
    collect_coverage: bool = False,
) -> tuple[ConformanceReport, ConformanceRunner]:
    """One-call convenience: build a runner, run it, return both."""
    runner = ConformanceRunner(
        corpus=corpus, dialects=dialects, collect_coverage=collect_coverage
    )
    return runner.run(), runner
