"""The conformance corpus: ``corpus/*.case`` files.

A case file holds one or more cases separated by ``---`` lines.  Each
case is a header block of ``key: value`` lines, a blank line, then the
SQL text (which may span several lines)::

    case: window-function-needs-window-feature
    dialects: scql tinysql core
    expect: reject
    hint: enable feature 'Window'

    SELECT RANK() OVER (PARTITION BY region) FROM orders
    ---
    case: plain-projection
    dialects: *
    expect: accept

    SELECT a FROM t

Header keys:

``case`` (required)
    Case name, unique within the corpus.
``dialects`` (required)
    Space-separated preset dialect names the case applies to; ``*``
    means every preset.  Prefix a name with ``!`` to exclude it from a
    ``*`` selection (``dialects: * !scql``).
``expect`` (required)
    ``accept`` or ``reject`` — the accept/reject boundary assertion,
    checked against the interpreting *and* the generated-code backend —
    or a translation assertion: ``translates-to`` (the case's SQL, parsed
    in each listed dialect, must translate to the ``to:`` dialect) or
    ``untranslatable`` (the translation must be refused with a
    structured error, never malformed SQL).
``code`` / ``message`` / ``hint`` (optional, reject/untranslatable only)
    Substring assertions against the diagnostics: the expected error
    code (exact), a message fragment, a hint fragment (e.g. the
    feature-hinter's "enable feature 'X'").
``to`` (required for translation cases)
    Target preset dialect of ``translates-to`` / ``untranslatable``.
``output`` (optional, ``translates-to`` only)
    The exact translated SQL expected.
``rewrite`` (optional, ``translates-to`` only)
    Substring expected in the renderer's lossless-rewrite notes.

Lines starting with ``#`` before the header are comments.  The format is
deliberately line-oriented and diff-friendly: conformance cases are the
repo's executable statement of which dialect accepts what, and review
happens on the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ReproError

#: Header keys a case block may carry.
_KNOWN_KEYS = frozenset(
    {"case", "dialects", "expect", "code", "message", "hint",
     "to", "output", "rewrite"}
)

#: Valid values of the ``expect:`` header.
_EXPECTATIONS = ("accept", "reject", "translates-to", "untranslatable")

#: Case-file extension the loader picks up.
CASE_SUFFIX = ".case"


class CorpusError(ReproError):
    """A malformed case file — unknown key, missing field, bad dialect."""


@dataclass(frozen=True)
class ConformanceCase:
    """One (SQL text, dialect set, expectation) conformance assertion.

    Attributes:
        name: Unique case name.
        path: Source file (diagnostics only).
        dialects: Preset dialects the case applies to, resolution of the
            header's ``*``/``!name`` syntax against the preset list.
        expect: ``"accept"``, ``"reject"``, ``"translates-to"`` or
            ``"untranslatable"``.
        sql: The SQL text (may span lines).
        code: Expected diagnostic code (reject/untranslatable; exact).
        message: Expected message fragment (substring).
        hint: Expected hint fragment (substring).
        to: Target dialect of a translation case.
        output: Exact translated SQL expected (``translates-to`` only).
        rewrite: Expected rewrite-note fragment (``translates-to`` only).
    """

    name: str
    path: str
    dialects: tuple[str, ...]
    expect: str
    sql: str
    code: str | None = None
    message: str | None = None
    hint: str | None = None
    to: str | None = None
    output: str | None = None
    rewrite: str | None = None

    @property
    def expects_accept(self) -> bool:
        return self.expect == "accept"

    @property
    def is_translation(self) -> bool:
        return self.expect in ("translates-to", "untranslatable")


@dataclass
class Corpus:
    """Every case from one corpus directory, with name-uniqueness checked."""

    cases: list[ConformanceCase] = field(default_factory=list)

    def for_dialect(self, dialect: str) -> list[ConformanceCase]:
        return [c for c in self.cases if dialect in c.dialects]

    def dialects(self) -> list[str]:
        seen: dict[str, None] = {}
        for case in self.cases:
            for dialect in case.dialects:
                seen.setdefault(dialect, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)


def default_corpus_dir() -> Path:
    """The in-repo ``corpus/`` directory (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "corpus"


def _resolve_dialects(
    spec: str, presets: Sequence[str], path: str, name: str
) -> tuple[str, ...]:
    tokens = spec.split()
    if not tokens:
        raise CorpusError(f"{path}: case {name!r} has an empty dialects list")
    include: list[str] = []
    exclude: set[str] = set()
    starred = False
    for token in tokens:
        if token == "*":
            starred = True
        elif token.startswith("!"):
            exclude.add(token[1:])
        else:
            include.append(token)
    for dialect in [*include, *exclude]:
        if dialect not in presets:
            raise CorpusError(
                f"{path}: case {name!r} names unknown dialect {dialect!r} "
                f"(presets: {', '.join(presets)})"
            )
    if starred:
        selected = [d for d in presets if d not in exclude]
    else:
        if exclude:
            raise CorpusError(
                f"{path}: case {name!r} uses !exclusions without '*'"
            )
        selected = include
    if not selected:
        raise CorpusError(
            f"{path}: case {name!r} resolves to an empty dialect set"
        )
    return tuple(selected)


def _parse_block(
    block: str, presets: Sequence[str], path: str
) -> ConformanceCase | None:
    lines = block.splitlines()
    headers: dict[str, str] = {}
    body_start = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            if headers:
                body_start = index + 1
                break
            continue  # leading blank lines before the header
        if stripped.startswith("#") and not headers:
            continue  # leading comments
        if ":" not in stripped:
            raise CorpusError(
                f"{path}: malformed header line {stripped!r} "
                "(expected 'key: value')"
            )
        key, _, value = stripped.partition(":")
        key = key.strip().lower()
        if key not in _KNOWN_KEYS:
            raise CorpusError(
                f"{path}: unknown case key {key!r} "
                f"(known: {', '.join(sorted(_KNOWN_KEYS))})"
            )
        if key in headers:
            raise CorpusError(f"{path}: duplicate case key {key!r}")
        headers[key] = value.strip()
    if not headers:
        return None  # an empty block (e.g. trailing separator)
    name = headers.get("case")
    if not name:
        raise CorpusError(f"{path}: case block without a 'case:' name")
    if body_start is None:
        raise CorpusError(f"{path}: case {name!r} has no SQL body")
    sql = "\n".join(lines[body_start:]).strip()
    if not sql:
        raise CorpusError(f"{path}: case {name!r} has an empty SQL body")
    expect = headers.get("expect", "").lower()
    if expect not in _EXPECTATIONS:
        raise CorpusError(
            f"{path}: case {name!r} must set 'expect:' to one of "
            f"{', '.join(_EXPECTATIONS)}"
        )
    if expect in ("accept", "translates-to"):
        for key in ("code", "message", "hint"):
            if key in headers:
                raise CorpusError(
                    f"{path}: case {name!r} expects {expect}; "
                    f"{key!r} assertions only apply to failures"
                )
    translation = expect in ("translates-to", "untranslatable")
    if translation:
        target = headers.get("to")
        if not target:
            raise CorpusError(
                f"{path}: case {name!r} expects {expect} but has no "
                "'to:' target dialect"
            )
        if target not in presets:
            raise CorpusError(
                f"{path}: case {name!r} names unknown target dialect "
                f"{target!r} (presets: {', '.join(presets)})"
            )
    else:
        for key in ("to", "output", "rewrite"):
            if key in headers:
                raise CorpusError(
                    f"{path}: case {name!r} sets {key!r}, which only "
                    "applies to translation cases"
                )
    if expect == "untranslatable":
        for key in ("output", "rewrite"):
            if key in headers:
                raise CorpusError(
                    f"{path}: case {name!r} is untranslatable; "
                    f"{key!r} only applies to 'translates-to'"
                )
    if "dialects" not in headers:
        raise CorpusError(f"{path}: case {name!r} has no 'dialects:' line")
    dialects = _resolve_dialects(headers["dialects"], presets, path, name)
    return ConformanceCase(
        name=name,
        path=path,
        dialects=dialects,
        expect=expect,
        sql=sql,
        code=headers.get("code"),
        message=headers.get("message"),
        hint=headers.get("hint"),
        to=headers.get("to"),
        output=headers.get("output"),
        rewrite=headers.get("rewrite"),
    )


def parse_case_file(
    text: str, presets: Sequence[str], path: str = "<corpus>"
) -> list[ConformanceCase]:
    """Parse one ``.case`` file's text into its cases."""
    cases: list[ConformanceCase] = []
    for block in _split_blocks(text):
        case = _parse_block(block, presets, path)
        if case is not None:
            cases.append(case)
    if not cases:
        raise CorpusError(f"{path}: no cases found")
    return cases


def _split_blocks(text: str) -> Iterable[str]:
    block: list[str] = []
    for line in text.splitlines():
        if line.strip() == "---":
            yield "\n".join(block)
            block = []
        else:
            block.append(line)
    yield "\n".join(block)


def load_corpus(
    directory: str | Path | None = None,
    presets: Sequence[str] | None = None,
) -> Corpus:
    """Load every ``*.case`` file under ``directory`` (sorted by name).

    ``presets`` defaults to the SQL preset dialect list; passing it
    explicitly keeps the corpus machinery usable for non-SQL product
    lines (and keeps tests hermetic).
    """
    if presets is None:
        from ..sql import dialect_names

        presets = dialect_names()
    directory = Path(directory) if directory is not None else default_corpus_dir()
    if not directory.is_dir():
        raise CorpusError(
            f"conformance corpus directory not found: {directory}"
        )
    corpus = Corpus()
    seen: dict[str, str] = {}
    for path in sorted(directory.glob(f"*{CASE_SUFFIX}")):
        for case in parse_case_file(path.read_text(), presets, str(path)):
            if case.name in seen:
                raise CorpusError(
                    f"{path}: duplicate case name {case.name!r} "
                    f"(first defined in {seen[case.name]})"
                )
            seen[case.name] = str(path)
            corpus.cases.append(case)
    if not corpus.cases:
        raise CorpusError(f"no *.case files under {directory}")
    return corpus
