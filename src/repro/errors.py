"""Shared exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
lexing, grammar handling, parser generation, feature modeling, and feature
composition.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LexerError(ReproError):
    """Base class for tokenization errors."""


class TokenConflictError(LexerError):
    """Two token definitions with the same name but different patterns."""


class ScanError(LexerError):
    """Input text contains a character sequence no token matches."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class GrammarError(ReproError):
    """Base class for grammar construction and validation errors."""


class GrammarSyntaxError(GrammarError):
    """The textual grammar DSL could not be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class UndefinedNonterminalError(GrammarError):
    """A production references a nonterminal that has no rule."""


class LeftRecursionError(GrammarError):
    """The grammar contains left recursion, which LL parsers cannot handle."""


class ParserGenerationError(ReproError):
    """Base class for errors while building a parser from a grammar."""


class LLConflictError(ParserGenerationError):
    """The grammar is not LL(1) and strict mode was requested."""

    def __init__(self, message: str, conflicts: list | None = None) -> None:
        super().__init__(message)
        self.conflicts = conflicts or []


class ParseError(ReproError):
    """Input text does not conform to the composed grammar."""

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        expected: frozenset[str] = frozenset(),
        found: str | None = None,
    ) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
        self.expected = expected
        self.found = found


class FeatureModelError(ReproError):
    """Base class for feature-model construction errors."""


class UnknownFeatureError(FeatureModelError):
    """A configuration or constraint references a feature that is not in the model."""


class InvalidConfigurationError(FeatureModelError):
    """A feature selection violates the feature model.

    Carries the full list of violation messages so tools can show all of
    them at once rather than one at a time.
    """

    def __init__(self, violations: list[str]) -> None:
        super().__init__(
            "invalid feature configuration:\n  - " + "\n  - ".join(violations)
        )
        self.violations = list(violations)


class CompositionError(ReproError):
    """Base class for feature-composition errors."""


class CompositionOrderError(CompositionError):
    """Units were composed in an order the paper's rules forbid.

    For example an optional extension ``A : B [C]`` arriving before its
    non-optional base ``A : B``, or a complex list arriving before its
    sublist.
    """


class ConstraintViolationError(CompositionError):
    """A requires/excludes constraint between features is violated."""


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class CatalogError(EngineError):
    """Unknown or duplicate table/column/schema."""


class TypeMismatchError(EngineError):
    """An expression or assignment combined incompatible types."""


class ExecutionError(EngineError):
    """A statement failed during execution (constraint violation, etc.)."""
