"""Shared exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
lexing, grammar handling, parser generation, feature modeling, and feature
composition.

Positioned errors (:class:`ScanError`, :class:`GrammarSyntaxError`,
:class:`ParseError`) expose a uniform ``.span`` property — a
:class:`~repro.diagnostics.model.Span` with start *and* end line/column —
and every :class:`ReproError` converts to a structured
:class:`~repro.diagnostics.model.Diagnostic` via :meth:`~ReproError.to_diagnostic`.
Message formats are unchanged from earlier releases.
"""

from __future__ import annotations

from .diagnostics.model import (
    CIRCUIT_OPEN,
    COMPOSITION_ORDER,
    CONFIG_INVALID,
    GENERIC_ERROR,
    LINT_GATE_FAILED,
    PARSE_BUDGET_EXCEEDED,
    PARSE_ERROR,
    PARSE_TIMEOUT,
    SCAN_ERROR,
    SERVICE_OVERLOADED,
    Diagnostic,
    Severity,
    Span,
)


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable diagnostic code; subclasses override.
    code: str = GENERIC_ERROR

    #: Actionable follow-ups attached when the error was raised.
    hints: tuple[str, ...] = ()

    @property
    def span(self) -> Span | None:
        """Source region of the error, when one is known."""
        return None

    def to_diagnostic(self) -> Diagnostic:
        """Structured form of this error for rendering and tooling."""
        message = getattr(self, "bare_message", None) or str(self)
        return Diagnostic(
            message=message,
            span=self.span,
            severity=Severity.ERROR,
            code=self.code,
            hints=tuple(self.hints),
        )


class _PositionedMixin:
    """Shared ``.span`` plumbing for errors that carry line/column info.

    Subclasses set ``line``/``column`` (1-based start) and optionally
    ``end_line``/``end_column``; a missing end collapses to a
    one-character span.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @property
    def span(self) -> Span:
        return Span(self.line, self.column, self.end_line, self.end_column)


class LexerError(ReproError):
    """Base class for tokenization errors."""


class TokenConflictError(LexerError):
    """Two token definitions with the same name but different patterns."""


class ScanError(_PositionedMixin, LexerError):
    """Input text contains a character sequence no token matches."""

    code = SCAN_ERROR

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        end_line: int = 0,
        end_column: int = 0,
    ) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.bare_message = message
        self.line = line
        self.column = column
        self.end_line = end_line or line
        self.end_column = end_column or column + 1


class GrammarError(ReproError):
    """Base class for grammar construction and validation errors."""


class GrammarSyntaxError(_PositionedMixin, GrammarError):
    """The textual grammar DSL could not be parsed."""

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        end_line: int = 0,
        end_column: int = 0,
    ) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.bare_message = message
        self.line = line
        self.column = column
        self.end_line = end_line or line
        self.end_column = end_column or column + 1


class UndefinedNonterminalError(GrammarError):
    """A production references a nonterminal that has no rule."""


class LeftRecursionError(GrammarError):
    """The grammar contains left recursion, which LL parsers cannot handle."""


class ParserGenerationError(ReproError):
    """Base class for errors while building a parser from a grammar."""


class LLConflictError(ParserGenerationError):
    """The grammar is not LL(1) and strict mode was requested."""

    def __init__(self, message: str, conflicts: list | None = None) -> None:
        super().__init__(message)
        self.conflicts = conflicts or []


class ParseError(_PositionedMixin, ReproError):
    """Input text does not conform to the composed grammar."""

    code = PARSE_ERROR

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        expected: frozenset[str] = frozenset(),
        found: str | None = None,
        end_line: int = 0,
        end_column: int = 0,
        hints: tuple[str, ...] = (),
    ) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.bare_message = message
        self.line = line
        self.column = column
        self.expected = expected
        self.found = found
        self.end_line = end_line or line
        self.end_column = end_column or column + 1
        self.hints = tuple(hints)


class ParseBudgetExceeded(ParseError):
    """The parser's fuel/step budget ran out before the input was decided.

    Raised instead of letting pathological (usually adversarial) non-LL(1)
    backtracking run unbounded.  Being a :class:`ParseError`, existing
    ``except ParseError`` handlers and :meth:`Parser.accepts` treat it as
    a clean rejection rather than a hang.
    """

    code = PARSE_BUDGET_EXCEEDED

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        steps: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(message, line=line, column=column, **kwargs)
        self.steps = steps


class ParseDeadlineExceeded(ParseBudgetExceeded):
    """A cooperative deadline check fired inside the parse driver.

    Subclasses :class:`ParseBudgetExceeded` so every existing handler
    (``accepts``, the recovery loop, the service's outcome mapping)
    already treats a deadline abort as a clean bounded rejection — but
    with the service-timeout code so callers can tell "input was
    pathological" (E0202) apart from "request ran out of time" (E0203).
    """

    code = PARSE_TIMEOUT


class ServiceOverloadedError(ReproError):
    """The parse service shed this request at admission.

    Raised (and immediately converted to an E0204 diagnostic) when the
    bounded request queue is full; callers should back off and retry.
    """

    code = SERVICE_OVERLOADED

    def __init__(self, message: str, in_flight: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.in_flight = in_flight
        self.limit = limit
        self.hints = ("the service is at capacity; retry with backoff",)


class FeatureModelError(ReproError):
    """Base class for feature-model construction errors."""


class UnknownFeatureError(FeatureModelError):
    """A configuration or constraint references a feature that is not in the model."""


class InvalidConfigurationError(FeatureModelError):
    """A feature selection violates the feature model.

    Carries the full list of violation messages so tools can show all of
    them at once rather than one at a time.
    """

    code = CONFIG_INVALID

    def __init__(self, violations: list[str]) -> None:
        super().__init__(
            "invalid feature configuration:\n  - " + "\n  - ".join(violations)
        )
        self.violations = list(violations)

    def diagnostics(self) -> list[Diagnostic]:
        """One diagnostic per violation, each with a suggested fix."""
        return [
            Diagnostic(
                message=violation,
                severity=Severity.ERROR,
                code=self.code,
                hints=_configuration_fix(violation),
            )
            for violation in self.violations
        ]


def _configuration_fix(violation: str) -> tuple[str, ...]:
    """Suggest a fix for one textual configuration violation."""
    import re

    match = re.search(r"feature '([^']+)' requires feature '([^']+)'", violation)
    if match:
        return (f"add feature '{match.group(2)}' to the selection "
                f"(or drop '{match.group(1)}')",)
    match = re.search(r"feature '([^']+)' excludes feature '([^']+)'", violation)
    if match:
        return (f"remove either '{match.group(1)}' or '{match.group(2)}' "
                "from the selection",)
    match = re.search(r"mandatory feature '([^']+)' of '([^']+)'", violation)
    if match:
        return (f"add mandatory feature '{match.group(1)}'",)
    match = re.search(r"feature '([^']+)' selected without its parent '([^']+)'",
                      violation)
    if match:
        return (f"add parent feature '{match.group(2)}'",)
    match = re.search(r"unknown feature '([^']+)'", violation)
    if match:
        return ("check the feature name against `python -m repro.cli diagrams`",)
    return ()


class CompositionError(ReproError):
    """Base class for feature-composition errors."""


class TokenMergeConflictError(CompositionError, TokenConflictError):
    """Composing two units' token files redefined a token incompatibly.

    Raised by :meth:`~repro.lexer.spec.TokenSet.merge` when the same
    terminal name arrives with a different pattern, kind, or flags from
    two different contributing units; the message names both units.
    Inherits from both :class:`CompositionError` (it is a composition
    failure) and :class:`TokenConflictError` (existing lexer-level
    handlers keep working).
    """

    def __init__(
        self,
        message: str,
        token: str | None = None,
        units: tuple[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.token = token
        self.units = units or ()


class CompositionOrderError(CompositionError):
    """Units were composed in an order the paper's rules forbid.

    For example an optional extension ``A : B [C]`` arriving before its
    non-optional base ``A : B``, or a complex list arriving before its
    sublist.
    """

    code = COMPOSITION_ORDER

    def __init__(self, message: str, hints: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.hints = tuple(hints)


class ConstraintViolationError(CompositionError):
    """A requires/excludes constraint between features is violated."""


class LintGateError(CompositionError):
    """A composed product was rejected by the static-analysis gate.

    Raised by a :class:`~repro.service.registry.ParserRegistry` built
    with ``lint_gate=True`` when the :mod:`repro.lint` program passes
    find error-grade defects (nullable loops, shadowed tokens) in a
    freshly composed product.  Carries the findings so callers can
    render them with full rule/feature provenance.
    """

    code = LINT_GATE_FAILED

    def __init__(self, message: str, findings: tuple = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class CircuitOpenError(CompositionError):
    """A fingerprint's circuit breaker is open: failing fast.

    After ``threshold`` consecutive composition/lint-gate failures for
    the same fingerprint, the registry stops re-running the expensive
    pipeline and raises this instead until the cooldown elapses.
    """

    code = CIRCUIT_OPEN

    def __init__(
        self, message: str, fingerprint: str = "", retry_after: float = 0.0
    ) -> None:
        super().__init__(message)
        self.fingerprint = fingerprint
        self.retry_after = retry_after
        self.hints = (
            f"circuit breaker cools down in {retry_after:.1f}s; "
            "fix the underlying composition failure or wait",
        )


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class CatalogError(EngineError):
    """Unknown or duplicate table/column/schema."""


class TypeMismatchError(EngineError):
    """An expression or assignment combined incompatible types."""


class ExecutionError(EngineError):
    """A statement failed during execution (constraint violation, etc.)."""
