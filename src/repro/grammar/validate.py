"""Whole-grammar validation for *composed* grammars.

Per-feature sub-grammars legitimately reference nonterminals they do not
define (the definition arrives from another feature).  After composition,
though, the result must be closed and LL-parsable, so we check:

* every referenced nonterminal has a rule,
* every referenced terminal has a token definition,
* the start symbol exists and every rule is reachable from it,
* there is no (direct or indirect) left recursion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import LeftRecursionError, UndefinedNonterminalError
from .expr import Choice, Element, Opt, Ref, Rep, Seq, is_optional_element
from .grammar import Grammar


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`; empty lists mean the grammar is clean."""

    undefined_nonterminals: list[str] = field(default_factory=list)
    undefined_terminals: list[str] = field(default_factory=list)
    unreachable_rules: list[str] = field(default_factory=list)
    left_recursive: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.undefined_nonterminals
            or self.undefined_terminals
            or self.left_recursive
        )

    def raise_if_failed(self) -> None:
        if self.undefined_nonterminals:
            raise UndefinedNonterminalError(
                "undefined nonterminals: "
                + ", ".join(sorted(self.undefined_nonterminals))
            )
        if self.undefined_terminals:
            raise UndefinedNonterminalError(
                "terminals without token definitions: "
                + ", ".join(sorted(self.undefined_terminals))
            )
        if self.left_recursive:
            raise LeftRecursionError(
                "left-recursive nonterminals: "
                + ", ".join(sorted(self.left_recursive))
            )


def validate(grammar: Grammar) -> ValidationReport:
    """Run all checks and return a report (does not raise)."""
    report = ValidationReport()
    defined = set(grammar.rule_names())
    report.undefined_nonterminals = sorted(
        grammar.referenced_nonterminals() - defined
    )
    report.undefined_terminals = sorted(
        grammar.referenced_terminals() - grammar.tokens.names()
    )
    report.unreachable_rules = sorted(_unreachable(grammar))
    report.left_recursive = sorted(_left_recursive(grammar))
    return report


def _unreachable(grammar: Grammar) -> set[str]:
    if grammar.start is None or not grammar.has_rule(grammar.start):
        return set(grammar.rule_names())
    seen: set[str] = set()
    queue: deque[str] = deque([grammar.start])
    while queue:
        name = queue.popleft()
        if name in seen or not grammar.has_rule(name):
            continue
        seen.add(name)
        for alt in grammar.rule(name).alternatives:
            for ref in alt.nonterminals():
                if ref not in seen:
                    queue.append(ref)
    return set(grammar.rule_names()) - seen


def _left_recursive(grammar: Grammar) -> set[str]:
    """Nonterminals on a leftmost-derivation cycle.

    Builds the "can appear leftmost, possibly after nullable prefixes"
    relation and finds nonterminals that can reach themselves through it.
    """
    left_edges: dict[str, set[str]] = {name: set() for name in grammar.rule_names()}
    for rule in grammar:
        for alt in rule.alternatives:
            left_edges[rule.name].update(_leftmost_refs(alt))

    recursive: set[str] = set()
    for origin in left_edges:
        seen: set[str] = set()
        stack = list(left_edges[origin])
        while stack:
            name = stack.pop()
            if name == origin:
                recursive.add(origin)
                break
            if name in seen:
                continue
            seen.add(name)
            stack.extend(left_edges.get(name, ()))
    return recursive


def _leftmost_refs(element: Element) -> set[str]:
    """Nonterminals derivable at the left edge of ``element``."""
    if isinstance(element, Ref):
        return {element.name}
    if isinstance(element, Opt):
        return _leftmost_refs(element.inner)
    if isinstance(element, Rep):
        refs = _leftmost_refs(element.inner)
        return refs
    if isinstance(element, Choice):
        refs: set[str] = set()
        for alt in element.alternatives:
            refs |= _leftmost_refs(alt)
        return refs
    if isinstance(element, Seq):
        refs = set()
        for item in element.items:
            refs |= _leftmost_refs(item)
            if not is_optional_element(item):
                break
        return refs
    return set()
