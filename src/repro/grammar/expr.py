"""EBNF grammar expression algebra.

Grammar right-hand sides are trees of immutable expression nodes:

* :class:`Tok` — a terminal reference (``SELECT``),
* :class:`Ref` — a nonterminal reference (``select_list``),
* :class:`Seq` — a sequence of elements,
* :class:`Choice` — ordered alternatives,
* :class:`Opt` — an optional element (``[x]`` / ``x?``),
* :class:`Rep` — a repetition, optionally separated (``x*``, ``x+``,
  ``x (COMMA x)*`` as ``Rep(x, min=1, separator=COMMA)``).

Structural equality on these nodes is what the paper's composition rules
("the new production *contains* the old one") are defined over, so all
node classes are frozen dataclasses with value semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class Element:
    """Base class for all grammar expression nodes."""

    __slots__ = ()

    def walk(self) -> Iterator["Element"]:
        """Yield this node and all descendants, pre-order."""
        yield self

    def terminals(self) -> Iterator[str]:
        """Yield the names of all terminals referenced below this node."""
        for node in self.walk():
            if isinstance(node, Tok):
                yield node.name

    def nonterminals(self) -> Iterator[str]:
        """Yield the names of all nonterminals referenced below this node."""
        for node in self.walk():
            if isinstance(node, Ref):
                yield node.name


@dataclass(frozen=True, slots=True)
class Tok(Element):
    """Reference to a terminal symbol by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Ref(Element):
    """Reference to a nonterminal symbol by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Seq(Element):
    """A sequence of elements, matched in order."""

    items: tuple[Element, ...]

    def __str__(self) -> str:
        return " ".join(_paren(i, inside="seq") for i in self.items)

    def walk(self) -> Iterator[Element]:
        yield self
        for item in self.items:
            yield from item.walk()


@dataclass(frozen=True, slots=True)
class Choice(Element):
    """Ordered alternatives."""

    alternatives: tuple[Element, ...]

    def __str__(self) -> str:
        return " | ".join(str(a) for a in self.alternatives)

    def walk(self) -> Iterator[Element]:
        yield self
        for alt in self.alternatives:
            yield from alt.walk()


@dataclass(frozen=True, slots=True)
class Opt(Element):
    """An optional element: matches its inner element or nothing."""

    inner: Element

    def __str__(self) -> str:
        return f"{_paren(self.inner, inside='post')}?"

    def walk(self) -> Iterator[Element]:
        yield self
        yield from self.inner.walk()


@dataclass(frozen=True, slots=True)
class Rep(Element):
    """A repetition of an element.

    ``min`` is 0 (``*``) or 1 (``+``).  ``separator`` models SQL's
    pervasive comma-separated "complex lists": ``Rep(x, min=1,
    separator=Tok("COMMA"))`` matches ``x (COMMA x)*``.
    """

    inner: Element
    min: int = 0
    separator: Element | None = None

    def __post_init__(self) -> None:
        if self.min not in (0, 1):
            raise ValueError("Rep.min must be 0 or 1")

    def __str__(self) -> str:
        inner = _paren(self.inner, inside="post")
        if self.separator is not None:
            body = f"{inner} ({self.separator} {inner})*"
            return body if self.min == 1 else f"({body})?"
        suffix = "+" if self.min == 1 else "*"
        return f"{inner}{suffix}"

    def walk(self) -> Iterator[Element]:
        yield self
        yield from self.inner.walk()
        if self.separator is not None:
            yield from self.separator.walk()


def _paren(element: Element, inside: str) -> str:
    """Parenthesize child expressions where precedence requires it."""
    if isinstance(element, Choice):
        return f"({element})"
    if inside == "post" and isinstance(element, Seq) and len(element.items) > 1:
        return f"({element})"
    return str(element)


def seq(*items: Element) -> Element:
    """Build a sequence, collapsing the one-element case."""
    flat: list[Element] = []
    for item in items:
        if isinstance(item, Seq):
            flat.extend(item.items)
        else:
            flat.append(item)
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def choice(*alternatives: Element) -> Element:
    """Build a choice, collapsing nested choices and the one-alt case."""
    flat: list[Element] = []
    for alt in alternatives:
        if isinstance(alt, Choice):
            flat.extend(alt.alternatives)
        else:
            flat.append(alt)
    if len(flat) == 1:
        return flat[0]
    return Choice(tuple(flat))


def opt(inner: Element) -> Element:
    """Build an optional element (idempotent: ``opt(opt(x)) == opt(x)``)."""
    if isinstance(inner, Opt):
        return inner
    return Opt(inner)


def star(inner: Element, separator: Element | None = None) -> Rep:
    """Zero-or-more repetition."""
    return Rep(inner, min=0, separator=separator)


def plus(inner: Element, separator: Element | None = None) -> Rep:
    """One-or-more repetition; with a separator this is SQL's complex list."""
    return Rep(inner, min=1, separator=separator)


def flatten(element: Element) -> list[Element]:
    """Flatten an alternative into its top-level element sequence.

    A bare element becomes a one-item list; nested sequences are expanded.
    Composition containment checks (see ``repro.core.composer``) operate on
    these flattened forms.
    """
    if isinstance(element, Seq):
        result: list[Element] = []
        for item in element.items:
            result.extend(flatten(item))
        return result
    return [element]


def is_optional_element(element: Element) -> bool:
    """True when the element can match the empty string on its own."""
    if isinstance(element, Opt):
        return True
    if isinstance(element, Rep):
        return element.min == 0
    if isinstance(element, Seq):
        return all(is_optional_element(i) for i in element.items)
    if isinstance(element, Choice):
        return any(is_optional_element(a) for a in element.alternatives)
    return False


def required_core(element: Element) -> Element | None:
    """The mandatory element wrapped by an optional/repetition, if any.

    Used by containment checks: in ``A : B [C]`` the element ``[C]`` has
    required core ``C``, so the alternative covers ``A : B C``'s shape.
    """
    if isinstance(element, Opt):
        return element.inner
    if isinstance(element, Rep):
        return element.inner
    return None
