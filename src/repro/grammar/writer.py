"""Pretty-printer for grammars — the inverse of :mod:`repro.grammar.reader`.

``read_grammar(write_grammar(g))`` reproduces ``g`` up to formatting; the
round-trip property is checked by the test suite.
"""

from __future__ import annotations

from .expr import Choice, Element, Opt, Ref, Rep, Seq, Tok
from .grammar import Grammar


def write_element(element: Element) -> str:
    """Render one grammar expression in DSL syntax."""
    if isinstance(element, (Tok, Ref)):
        return element.name
    if isinstance(element, Seq):
        if not element.items:
            return "()"
        return " ".join(_child(i) for i in element.items)
    if isinstance(element, Choice):
        return " | ".join(write_element(a) for a in element.alternatives)
    if isinstance(element, Opt):
        return f"{_child(element.inner)}?"
    if isinstance(element, Rep):
        inner = _child(element.inner)
        if element.separator is not None:
            sep = write_element(element.separator)
            body = f"{inner} ({sep} {inner})*"
            return body if element.min == 1 else f"({body})?"
        return f"{inner}{'+' if element.min == 1 else '*'}"
    raise TypeError(f"unknown grammar element: {element!r}")


def _child(element: Element) -> str:
    """Render a child, parenthesizing anything that spans multiple tokens."""
    text = write_element(element)
    needs_parens = (
        isinstance(element, Choice)
        or (isinstance(element, Seq) and len(element.items) > 1)
        or (isinstance(element, Rep) and element.separator is not None)
    )
    return f"({text})" if needs_parens else text


def write_grammar(grammar: Grammar, header: bool = True) -> str:
    """Render a full grammar in DSL syntax."""
    lines: list[str] = []
    if header:
        lines.append(f"grammar {grammar.name} ;")
        if grammar.start is not None:
            lines.append(f"start {grammar.start} ;")
        lines.append("")
    for rule in grammar:
        alts = [write_element(a) for a in rule.alternatives]
        if len(alts) == 1:
            lines.append(f"{rule.name} : {alts[0]} ;")
        else:
            lines.append(f"{rule.name}")
            lines.append(f"    : {alts[0]}")
            for alt in alts[1:]:
                lines.append(f"    | {alt}")
            lines.append("    ;")
    return "\n".join(lines) + "\n"
