"""Rules and grammars.

A :class:`Rule` is a labeled nonterminal with an ordered list of
alternatives (the paper's "production rules with choices").  A
:class:`Grammar` is an ordered collection of rules plus a start symbol and
the token set the rules draw their terminals from.

Grammars here are *sub-grammars* in the paper's sense: each feature ships
one, and the composition engine in :mod:`repro.core.composer` merges them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import GrammarError
from ..lexer.spec import TokenSet
from .expr import Element, Seq, flatten


class Rule:
    """One nonterminal and its ordered alternatives."""

    def __init__(self, name: str, alternatives: Iterable[Element] = ()) -> None:
        self.name = name
        self.alternatives: list[Element] = list(alternatives)

    def add_alternative(self, alternative: Element) -> None:
        self.alternatives.append(alternative)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.name == other.name and self.alternatives == other.alternatives

    def __repr__(self) -> str:
        alts = " | ".join(str(a) for a in self.alternatives)
        return f"{self.name} : {alts} ;"

    def copy(self) -> "Rule":
        return Rule(self.name, list(self.alternatives))

    def flattened_alternatives(self) -> list[list[Element]]:
        """Each alternative as a flat element sequence (for composition)."""
        return [flatten(a) for a in self.alternatives]


class Grammar:
    """An ordered set of rules with a designated start symbol.

    Attributes:
        name: Grammar (feature) name, used in diagnostics.
        start: Start nonterminal; may be None for pure extension grammars
            that only contribute rules to an existing start.
        tokens: The token set this grammar's terminals come from.
    """

    def __init__(
        self,
        name: str,
        rules: Iterable[Rule] = (),
        start: str | None = None,
        tokens: TokenSet | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.tokens = tokens if tokens is not None else TokenSet(name)
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            self.add_rule(rule)

    # -- rule management -------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Add a rule; a second rule for the same nonterminal merges its
        alternatives (plain append — composition rules live in the composer).
        """
        existing = self._rules.get(rule.name)
        if existing is None:
            self._rules[rule.name] = rule
            if self.start is None:
                self.start = rule.name
        else:
            for alt in rule.alternatives:
                if alt not in existing.alternatives:
                    existing.add_alternative(alt)

    def rule(self, name: str) -> Rule:
        try:
            return self._rules[name]
        except KeyError:
            raise GrammarError(
                f"grammar {self.name!r} has no rule {name!r}"
            ) from None

    def has_rule(self, name: str) -> bool:
        return name in self._rules

    def remove_rule(self, name: str) -> None:
        """Remove a rule (the paper's "removing production rules" mechanism)."""
        if name not in self._rules:
            raise GrammarError(f"grammar {self.name!r} has no rule {name!r}")
        del self._rules[name]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def rule_names(self) -> list[str]:
        return list(self._rules)

    # -- derived information ---------------------------------------------

    def referenced_terminals(self) -> frozenset[str]:
        names: set[str] = set()
        for rule in self:
            for alt in rule.alternatives:
                names.update(alt.terminals())
        return frozenset(names)

    def referenced_nonterminals(self) -> frozenset[str]:
        names: set[str] = set()
        for rule in self:
            for alt in rule.alternatives:
                names.update(alt.nonterminals())
        return frozenset(names)

    def undefined_nonterminals(self) -> frozenset[str]:
        """Nonterminals referenced but not defined by any rule.

        For a *sub*-grammar this is normal (the definition arrives from
        another feature at composition time); for a *composed* grammar it
        is an error surfaced by :func:`repro.grammar.validate.validate`.
        """
        return self.referenced_nonterminals() - frozenset(self._rules)

    def size(self) -> dict[str, int]:
        """Size metrics used by the grammar-size experiment (E6)."""
        n_alts = sum(len(r.alternatives) for r in self)
        n_elems = sum(
            sum(1 for _ in alt.walk()) for r in self for alt in r.alternatives
        )
        return {
            "rules": len(self),
            "alternatives": n_alts,
            "elements": n_elems,
            "tokens": len(self.tokens),
        }

    def copy(self) -> "Grammar":
        clone = Grammar(self.name, start=self.start, tokens=self.tokens)
        for rule in self:
            clone._rules[rule.name] = rule.copy()
        return clone

    def __repr__(self) -> str:
        return f"<Grammar {self.name!r}: {len(self)} rules, start={self.start!r}>"


def rule(name: str, *alternatives: Element) -> Rule:
    """Convenience constructor: ``rule("a", seq(...), seq(...))``."""
    return Rule(name, alternatives)


def alternative_as_seq(element: Element) -> Seq:
    """View any alternative as a sequence node (wrapping single elements)."""
    if isinstance(element, Seq):
        return element
    return Seq((element,))
