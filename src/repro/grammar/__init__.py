"""Grammar substrate: EBNF expression algebra, rules, DSL, and validation.

Public API::

    from repro.grammar import (
        Grammar, Rule, rule,
        Tok, Ref, Seq, Choice, Opt, Rep,
        seq, choice, opt, star, plus,
        read_grammar, write_grammar, validate,
    )
"""

from .expr import (
    Choice,
    Element,
    Opt,
    Ref,
    Rep,
    Seq,
    Tok,
    choice,
    flatten,
    is_optional_element,
    opt,
    plus,
    required_core,
    seq,
    star,
)
from .grammar import Grammar, Rule, rule
from .reader import normalize_lists, read_grammar
from .validate import ValidationReport, validate
from .writer import write_element, write_grammar

__all__ = [
    "Choice",
    "Element",
    "Grammar",
    "Opt",
    "Ref",
    "Rep",
    "Rule",
    "Seq",
    "Tok",
    "ValidationReport",
    "choice",
    "flatten",
    "is_optional_element",
    "normalize_lists",
    "opt",
    "plus",
    "read_grammar",
    "required_core",
    "rule",
    "seq",
    "star",
    "validate",
    "write_element",
    "write_grammar",
]
