"""Textual grammar DSL, our stand-in for the paper's Bali/ANTLR notation.

Feature sub-grammars are written in a compact EBNF dialect::

    grammar query_specification ;
    start query_specification ;

    query_specification : SELECT set_quantifier? select_list table_expression ;
    set_quantifier : DISTINCT | ALL ;
    select_list : ASTERISK | select_sublist (COMMA select_sublist)* ;

Conventions:

* UPPER_CASE identifiers are terminal references, anything else is a
  nonterminal reference (the common parser-generator convention).
* ``x?`` and ``[x]`` both mean optional, ``x*`` / ``x+`` are repetitions.
* ``//`` and ``#`` start line comments.
* An empty alternative (``a : B | ;``) denotes epsilon.
* ``x (SEP x)*`` is normalized into a separated-list node so the composer
  can apply the paper's sublist/complex-list rule structurally.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import GrammarSyntaxError
from ..lexer.spec import TokenSet
from .expr import (
    Choice,
    Element,
    Opt,
    Ref,
    Rep,
    Seq,
    Tok,
    choice,
    opt,
    seq,
)
from .grammar import Grammar, Rule

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*|\#[^\n]*)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>[:;|?*+()\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _DslToken:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> list[_DslToken]:
    tokens: list[_DslToken] = []
    pos, line, col = 0, 1, 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise GrammarSyntaxError(
                f"unexpected character {text[pos]!r} in grammar", line, col
            )
        kind = match.lastgroup or ""
        lexeme = match.group()
        if kind == "IDENT":
            tokens.append(_DslToken("IDENT", lexeme, line, col))
        elif kind == "PUNCT":
            tokens.append(_DslToken(lexeme, lexeme, line, col))
        newlines = lexeme.count("\n")
        if newlines:
            line += newlines
            col = len(lexeme) - lexeme.rfind("\n")
        else:
            col += len(lexeme)
        pos = match.end()
    tokens.append(_DslToken("EOF", "", line, col))
    return tokens


def _is_terminal_name(name: str) -> bool:
    """UPPER_CASE names are terminals; everything else is a nonterminal."""
    return name == name.upper() and any(c.isalpha() for c in name)


class _GrammarReader:
    """Recursive-descent parser for the grammar DSL."""

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> _DslToken:
        return self._tokens[self._index]

    def _advance(self) -> _DslToken:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _DslToken:
        token = self._current
        if token.kind != kind:
            raise GrammarSyntaxError(
                f"expected {kind!r} but found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str) -> bool:
        if self._current.kind == kind:
            self._advance()
            return True
        return False

    # -- grammar structure -------------------------------------------------

    def read(self, default_name: str, tokens: TokenSet | None) -> Grammar:
        name = default_name
        start: str | None = None
        if self._current.kind == "IDENT" and self._current.text == "grammar":
            self._advance()
            name = self._expect("IDENT").text
            self._expect(";")
        if self._current.kind == "IDENT" and self._current.text == "start":
            self._advance()
            start = self._expect("IDENT").text
            self._expect(";")
        grammar = Grammar(name, start=start, tokens=tokens)
        while self._current.kind != "EOF":
            grammar.add_rule(self._read_rule())
        if grammar.start is None and len(grammar):
            grammar.start = grammar.rule_names()[0]
        return grammar

    def _read_rule(self) -> Rule:
        lhs = self._expect("IDENT").text
        self._expect(":")
        body = self._read_choice()
        self._expect(";")
        alternatives = (
            list(body.alternatives) if isinstance(body, Choice) else [body]
        )
        return Rule(lhs, [normalize_lists(a) for a in alternatives])

    def _read_choice(self) -> Element:
        alternatives = [self._read_sequence()]
        while self._accept("|"):
            alternatives.append(self._read_sequence())
        if len(alternatives) == 1:
            return alternatives[0]
        return Choice(tuple(alternatives))

    def _read_sequence(self) -> Element:
        items: list[Element] = []
        while self._current.kind in ("IDENT", "(", "["):
            if self._current.kind == "IDENT" and self._current.text in (
                "grammar",
                "start",
            ):
                break
            items.append(self._read_postfix())
        if not items:
            return Seq(())  # epsilon
        return seq(*items)

    def _read_postfix(self) -> Element:
        element = self._read_primary()
        while self._current.kind in ("?", "*", "+"):
            mark = self._advance().kind
            if mark == "?":
                element = opt(element)
            elif mark == "*":
                element = Rep(element, min=0)
            else:
                element = Rep(element, min=1)
        return element

    def _read_primary(self) -> Element:
        token = self._current
        if token.kind == "IDENT":
            self._advance()
            if _is_terminal_name(token.text):
                return Tok(token.text)
            return Ref(token.text)
        if self._accept("("):
            inner = self._read_choice()
            self._expect(")")
            return inner
        if self._accept("["):
            inner = self._read_choice()
            self._expect("]")
            return opt(inner)
        raise GrammarSyntaxError(
            f"expected a symbol, '(' or '[' but found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )


def normalize_lists(element: Element) -> Element:
    """Rewrite ``x (SEP x)*`` patterns into separated-list :class:`Rep` nodes.

    Applied recursively.  This gives composition a structural handle on the
    paper's "complex list" form ``<NT> [ <comma> <NT> ... ]``.
    """
    if isinstance(element, Seq):
        items = [normalize_lists(i) for i in element.items]
        result: list[Element] = []
        index = 0
        while index < len(items):
            current = items[index]
            nxt = items[index + 1] if index + 1 < len(items) else None
            merged = _try_merge_list(current, nxt)
            if merged is not None:
                result.append(merged)
                index += 2
            else:
                result.append(current)
                index += 1
        return seq(*result) if len(result) != 1 else result[0]
    if isinstance(element, Choice):
        return choice(*[normalize_lists(a) for a in element.alternatives])
    if isinstance(element, Opt):
        return opt(normalize_lists(element.inner))
    if isinstance(element, Rep):
        sep = (
            normalize_lists(element.separator)
            if element.separator is not None
            else None
        )
        return Rep(normalize_lists(element.inner), element.min, sep)
    return element


def _try_merge_list(head: Element, tail: Element | None) -> Rep | None:
    """Merge ``head`` + ``(SEP head)*`` into ``Rep(head, 1, SEP)``."""
    if tail is None or not isinstance(tail, Rep) or tail.min != 0:
        return None
    if tail.separator is not None:
        return None
    inner = tail.inner
    if not isinstance(inner, Seq) or len(inner.items) != 2:
        return None
    sep, repeated = inner.items
    if not isinstance(sep, (Tok, Ref)):
        return None
    if repeated != head:
        return None
    return Rep(head, min=1, separator=sep)


def read_grammar(
    text: str,
    name: str = "grammar",
    tokens: TokenSet | None = None,
) -> Grammar:
    """Parse grammar DSL text into a :class:`Grammar`.

    Args:
        text: The DSL source.
        name: Fallback grammar name when the text has no ``grammar`` header.
        tokens: Token set to attach (terminals the grammar may reference).
    """
    return _GrammarReader(text).read(name, tokens)
