"""ASCII rendering of feature diagrams.

Reproduces the paper's Figures 1 and 2 in text form.  Notation follows the
usual feature-diagram conventions:

* ``[name]`` — optional feature, ``name`` — mandatory feature,
* ``<or>`` / ``<alt>`` after a feature — its children form an OR /
  alternative group,
* clone cardinalities are printed verbatim, e.g. ``Select Sublist [1..*]``.
"""

from __future__ import annotations

from .model import Feature, FeatureModel, GroupType


def render_feature(feature: Feature) -> str:
    """Render one feature subtree as an indented ASCII diagram."""
    lines: list[str] = []
    _render(feature, prefix="", is_last=True, is_root=True, lines=lines)
    return "\n".join(lines)


def render_model(model: FeatureModel) -> str:
    """Render a full model, appending its cross-tree constraints."""
    text = render_feature(model.root)
    if model.constraints:
        text += "\n\nconstraints:"
        for constraint in model.constraints:
            text += f"\n  {constraint.message()}"
    return text


def _label(feature: Feature, is_root: bool) -> str:
    name = feature.name
    if feature.cardinality.is_clone:
        name = f"{name} {feature.cardinality}"
    if not is_root and feature.optional:
        name = f"[{name}]"
    if feature.children and feature.group is GroupType.OR:
        name = f"{name} <or>"
    elif feature.children and feature.group is GroupType.ALTERNATIVE:
        name = f"{name} <alt>"
    return name


def _render(
    feature: Feature,
    prefix: str,
    is_last: bool,
    is_root: bool,
    lines: list[str],
) -> None:
    if is_root:
        lines.append(_label(feature, is_root=True))
        child_prefix = ""
    else:
        connector = "`-- " if is_last else "|-- "
        lines.append(f"{prefix}{connector}{_label(feature, is_root=False)}")
        child_prefix = prefix + ("    " if is_last else "|   ")
    for index, child in enumerate(feature.children):
        _render(
            child,
            prefix=child_prefix,
            is_last=index == len(feature.children) - 1,
            is_root=False,
            lines=lines,
        )
