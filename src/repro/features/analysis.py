"""Feature-model analyses: product counting, dead/core feature detection.

``count_products`` uses the standard tree dynamic program, which is exact
for models without cross-tree constraints; with constraints it reports an
upper bound unless the model is small enough to enumerate exactly.
``enumerate_products`` yields every valid configuration of small models;
it powers dead/core-feature detection and several property-based tests.
"""

from __future__ import annotations

from typing import Iterator

from .configuration import Configuration, validate_configuration
from .model import Feature, FeatureModel, GroupType


def count_products(model: FeatureModel, exact_limit: int = 24) -> int:
    """Number of valid configurations of the model.

    Exact when the model has no cross-tree constraints.  With constraints,
    the count is computed by enumeration when the model has at most
    ``exact_limit`` features, otherwise the unconstrained tree count is
    returned as an upper bound.
    """
    if model.constraints and len(model) <= exact_limit:
        return sum(1 for _ in enumerate_products(model))
    return _tree_count(model.root)


def _tree_count(feature: Feature) -> int:
    """Configurations of the subtree rooted here, given it is selected."""
    if not feature.children:
        return 1
    if feature.group is GroupType.AND:
        total = 1
        for child in feature.children:
            ways = _tree_count(child)
            total *= ways if child.mandatory else ways + 1
        return total
    if feature.group is GroupType.OR:
        total = 1
        for child in feature.children:
            total *= _tree_count(child) + 1
        return total - 1  # "none selected" is not allowed
    # ALTERNATIVE
    return sum(_tree_count(child) for child in feature.children)


def enumerate_products(model: FeatureModel) -> Iterator[Configuration]:
    """Yield every valid configuration (exponential; small models only)."""
    for subtree in _enumerate_subtree(model.root):
        config = Configuration.of(subtree)
        if not validate_configuration(model, config):
            yield config


def _enumerate_subtree(feature: Feature) -> Iterator[frozenset[str]]:
    """All selections of the subtree assuming ``feature`` is selected."""
    if not feature.children:
        yield frozenset((feature.name,))
        return
    child_options: list[list[frozenset[str] | None]] = []
    for child in feature.children:
        options: list[frozenset[str] | None] = list(_enumerate_subtree(child))
        if feature.group is not GroupType.AND or child.optional:
            options.append(None)  # "child not selected"
        child_options.append(options)

    for combo in _product(child_options):
        picked = [c for c in combo if c is not None]
        if feature.group is GroupType.OR and not picked:
            continue
        if feature.group is GroupType.ALTERNATIVE and len(picked) != 1:
            continue
        if feature.group is GroupType.AND:
            # mandatory children were given no None option above
            pass
        selection = {feature.name}
        for part in picked:
            selection |= part
        yield frozenset(selection)


def _product(options: list[list]) -> Iterator[tuple]:
    if not options:
        yield ()
        return
    head, *rest = options
    for choice in head:
        for tail in _product(rest):
            yield (choice, *tail)


def dead_features(model: FeatureModel) -> list[str]:
    """Features that appear in no valid configuration (enumeration-based)."""
    alive: set[str] = set()
    for config in enumerate_products(model):
        alive |= config.selected
    return sorted(set(model.feature_names()) - alive)


def core_features(model: FeatureModel) -> list[str]:
    """Features present in every valid configuration (enumeration-based)."""
    core: set[str] | None = None
    for config in enumerate_products(model):
        core = set(config.selected) if core is None else core & config.selected
    return sorted(core or set())


def model_statistics(model: FeatureModel) -> dict[str, int]:
    """Summary numbers used by experiment E3's report."""
    features = list(model.root.walk())
    return {
        "features": len(features),
        "leaves": sum(1 for f in features if not f.children),
        "optional": sum(1 for f in features if f.optional),
        "mandatory": sum(1 for f in features if f.mandatory),
        "or_groups": sum(1 for f in features if f.group is GroupType.OR and f.children),
        "alternative_groups": sum(
            1 for f in features if f.group is GroupType.ALTERNATIVE and f.children
        ),
        "constraints": len(model.constraints),
        "depth": _depth(model.root),
    }


def _depth(feature: Feature) -> int:
    if not feature.children:
        return 1
    return 1 + max(_depth(c) for c in feature.children)
