"""Cross-tree constraints between features.

The paper: "A feature may require other features for correct composition.
Such features constraints are expressed as requires or excludes conditions
on features."
"""

from __future__ import annotations

from dataclasses import dataclass


class Constraint:
    """Base class; subclasses implement :meth:`violated_by`."""

    def feature_names(self) -> tuple[str, ...]:
        raise NotImplementedError

    def violated_by(self, selection: frozenset[str]) -> bool:
        raise NotImplementedError

    def message(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Requires(Constraint):
    """Selecting ``feature`` demands that ``required`` is also selected."""

    feature: str
    required: str

    def feature_names(self) -> tuple[str, ...]:
        return (self.feature, self.required)

    def violated_by(self, selection: frozenset[str]) -> bool:
        return self.feature in selection and self.required not in selection

    def message(self) -> str:
        return f"feature {self.feature!r} requires feature {self.required!r}"


@dataclass(frozen=True, slots=True)
class Excludes(Constraint):
    """``feature`` and ``excluded`` may never be selected together."""

    feature: str
    excluded: str

    def feature_names(self) -> tuple[str, ...]:
        return (self.feature, self.excluded)

    def violated_by(self, selection: frozenset[str]) -> bool:
        return self.feature in selection and self.excluded in selection

    def message(self) -> str:
        return f"feature {self.feature!r} excludes feature {self.excluded!r}"
