"""Configurations — the paper's "feature instance descriptions".

A configuration selects a subset of a model's features (optionally with a
clone count for ``[1..*]`` features).  :func:`validate_configuration`
checks every feature-diagram rule; :func:`expand_selection` turns a sparse
user selection (just the interesting leaves) into a full, valid
configuration by pulling in ancestors, mandatory children and required
features — this is what the paper's envisioned configuration UI would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import InvalidConfigurationError, UnknownFeatureError
from .constraints import Requires
from .model import Feature, FeatureModel, GroupType


@dataclass(frozen=True)
class Configuration:
    """An immutable feature selection.

    Attributes:
        selected: Names of the selected features.
        counts: Clone counts for cardinality features (defaults to 1 for
            any selected feature not listed).
    """

    selected: frozenset[str]
    counts: Mapping[str, int] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.selected

    def count(self, name: str) -> int:
        if name not in self.selected:
            return 0
        return self.counts.get(name, 1)

    def __len__(self) -> int:
        return len(self.selected)

    @staticmethod
    def of(names: Iterable[str], counts: Mapping[str, int] | None = None) -> "Configuration":
        return Configuration(frozenset(names), dict(counts or {}))


def validate_configuration(
    model: FeatureModel, config: Configuration
) -> list[str]:
    """Return all violations (empty list when the configuration is valid)."""
    violations: list[str] = []
    for name in sorted(config.selected):
        if not model.has_feature(name):
            violations.append(f"unknown feature {name!r}")
    if violations:
        return violations

    if model.root.name not in config:
        violations.append(f"root feature {model.root.name!r} must be selected")

    for name in sorted(config.selected):
        feature = model.feature(name)
        if feature.parent is not None and feature.parent.name not in config:
            violations.append(
                f"feature {name!r} selected without its parent "
                f"{feature.parent.name!r}"
            )

    for feature in model:
        if feature.name not in config or not feature.children:
            continue
        selected_children = [c for c in feature.children if c.name in config]
        if feature.group is GroupType.AND:
            for child in feature.children:
                if child.mandatory and child.name not in config:
                    violations.append(
                        f"mandatory feature {child.name!r} of {feature.name!r} "
                        "not selected"
                    )
        elif feature.group is GroupType.OR:
            if not selected_children:
                violations.append(
                    f"OR group under {feature.name!r} needs at least one of: "
                    + ", ".join(c.name for c in feature.children)
                )
        elif feature.group is GroupType.ALTERNATIVE:
            if len(selected_children) != 1:
                violations.append(
                    f"alternative group under {feature.name!r} needs exactly "
                    f"one of: {', '.join(c.name for c in feature.children)} "
                    f"(got {len(selected_children)})"
                )

    for name in sorted(config.selected):
        feature = model.feature(name)
        count = config.count(name)
        card = feature.cardinality
        if count < card.min or (card.max is not None and count > card.max):
            violations.append(
                f"feature {name!r} has count {count}, outside its "
                f"cardinality {card}"
            )

    for constraint in model.constraints:
        if constraint.violated_by(config.selected):
            violations.append(constraint.message())

    return violations


def check_configuration(model: FeatureModel, config: Configuration) -> None:
    """Raise :class:`InvalidConfigurationError` when the config is invalid."""
    violations = validate_configuration(model, config)
    if violations:
        raise InvalidConfigurationError(violations)


def expand_selection(
    model: FeatureModel,
    names: Iterable[str],
    counts: Mapping[str, int] | None = None,
) -> Configuration:
    """Grow a sparse selection into a full configuration.

    The closure adds, repeatedly until stable:

    * the root and all ancestors of selected features,
    * mandatory children of selected AND-group features,
    * the first child of a selected ALTERNATIVE/OR-group feature with no
      selected child (deterministic default),
    * targets of ``requires`` constraints.

    The result is validated before being returned.
    """
    selected: set[str] = set(names)
    for name in list(selected):
        if not model.has_feature(name):
            raise UnknownFeatureError(f"model has no feature named {name!r}")
    selected.add(model.root.name)

    changed = True
    while changed:
        changed = False
        for name in list(selected):
            feature = model.feature(name)
            for ancestor in feature.ancestors():
                if ancestor.name not in selected:
                    selected.add(ancestor.name)
                    changed = True
        for name in list(selected):
            feature = model.feature(name)
            if not feature.children:
                continue
            if feature.group is GroupType.AND:
                for child in feature.children:
                    if child.mandatory and child.name not in selected:
                        selected.add(child.name)
                        changed = True
            elif feature.group in (GroupType.OR, GroupType.ALTERNATIVE):
                if not any(c.name in selected for c in feature.children):
                    selected.add(feature.children[0].name)
                    changed = True
        for constraint in model.constraints:
            if isinstance(constraint, Requires):
                if (
                    constraint.feature in selected
                    and constraint.required not in selected
                ):
                    selected.add(constraint.required)
                    changed = True

    config = Configuration.of(selected, counts)
    check_configuration(model, config)
    return config
