"""Feature-model writer — the inverse of :mod:`repro.features.dsl`.

``read_feature_model(write_feature_model(m))`` reproduces ``m`` up to
formatting; checked by the test suite.  Useful for exporting tailored
sub-models of the SQL decomposition.
"""

from __future__ import annotations

from .constraints import Excludes, Requires
from .model import Cardinality, Feature, FeatureModel, GroupType

_GROUP_WORDS = {
    GroupType.OR: "or",
    GroupType.ALTERNATIVE: "alt",
    GroupType.AND: None,
}


def write_feature_model(model: FeatureModel) -> str:
    """Render a model in the feature-model DSL."""
    lines: list[str] = [f"model {model.root.name} {{"]
    for child in model.root.children:
        _write_feature(child, lines, indent=1)
    for constraint in model.constraints:
        if isinstance(constraint, Requires):
            lines.append(f"    {constraint.feature} requires {constraint.required} ;")
        elif isinstance(constraint, Excludes):
            lines.append(f"    {constraint.feature} excludes {constraint.excluded} ;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _write_feature(feature: Feature, lines: list[str], indent: int) -> None:
    pad = "    " * indent
    parts = ["optional" if feature.optional else "mandatory", feature.name]
    if feature.cardinality != Cardinality():
        upper = "*" if feature.cardinality.max is None else str(feature.cardinality.max)
        parts.append(f"[{feature.cardinality.min}..{upper}]")
    group_word = _GROUP_WORDS[feature.group] if feature.children else None
    if group_word:
        parts.append(group_word)
    header = " ".join(parts)
    if feature.children:
        lines.append(f"{pad}{header} {{")
        for child in feature.children:
            _write_feature(child, lines, indent + 1)
        lines.append(f"{pad}}}")
    else:
        lines.append(f"{pad}{header}")
