"""Feature-modeling substrate: diagrams, configurations, and analyses.

Public API::

    from repro.features import (
        Feature, FeatureModel, GroupType, Cardinality, MANY,
        mandatory, optional, alternative, or_group,
        Requires, Excludes,
        Configuration, validate_configuration, check_configuration,
        expand_selection,
        count_products, enumerate_products, dead_features, core_features,
        model_statistics,
        render_feature, render_model, read_feature_model,
    )
"""

from .analysis import (
    core_features,
    count_products,
    dead_features,
    enumerate_products,
    model_statistics,
)
from .configuration import (
    Configuration,
    check_configuration,
    expand_selection,
    validate_configuration,
)
from .constraints import Constraint, Excludes, Requires
from .diagram import render_feature, render_model
from .dsl import read_feature_model
from .writer import write_feature_model
from .model import (
    MANY,
    Cardinality,
    Feature,
    FeatureModel,
    GroupType,
    alternative,
    mandatory,
    optional,
    or_group,
)

__all__ = [
    "MANY",
    "Cardinality",
    "Configuration",
    "Constraint",
    "Excludes",
    "Feature",
    "FeatureModel",
    "GroupType",
    "Requires",
    "alternative",
    "check_configuration",
    "core_features",
    "count_products",
    "dead_features",
    "enumerate_products",
    "expand_selection",
    "mandatory",
    "model_statistics",
    "optional",
    "or_group",
    "read_feature_model",
    "render_feature",
    "render_model",
    "validate_configuration",
    "write_feature_model",
]
