"""Feature models: the paper's feature diagrams as data.

A feature diagram is a tree whose root is the *concept*; child features are
mandatory or optional, and a feature's children may form an AND group
(default), an OR group (select at least one) or an ALTERNATIVE group
(select exactly one).  A feature may carry a clone cardinality such as
``[1..*]`` (Figure 1 uses it for Select Sublist).  Cross-tree
requires/excludes constraints live on the model.

Build models with the constructors::

    from repro.features import FeatureModel, mandatory, optional, Cardinality

    root = mandatory(
        "QuerySpecification",
        optional("SetQuantifier", mandatory("ALL"), mandatory("DISTINCT"),
                 group=GroupType.ALTERNATIVE),
        mandatory("SelectList", ...),
    )
    model = FeatureModel(root)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from ..errors import FeatureModelError, UnknownFeatureError


class GroupType(Enum):
    """How the children of a feature constrain each other."""

    AND = "and"  # children independently mandatory/optional
    OR = "or"  # at least one child
    ALTERNATIVE = "alternative"  # exactly one child


@dataclass(frozen=True, slots=True)
class Cardinality:
    """Clone cardinality of a feature, e.g. ``[1..*]``.

    ``max=None`` means unbounded.  The default ``[1..1]`` is an ordinary
    (non-cloned) feature.
    """

    min: int = 1
    max: int | None = 1

    def __post_init__(self) -> None:
        if self.min < 0:
            raise ValueError("cardinality minimum must be >= 0")
        if self.max is not None and self.max < self.min:
            raise ValueError("cardinality maximum must be >= minimum")

    @property
    def is_clone(self) -> bool:
        return self.max is None or self.max > 1

    def __str__(self) -> str:
        upper = "*" if self.max is None else str(self.max)
        return f"[{self.min}..{upper}]"


MANY = Cardinality(1, None)
"""The paper's ``[1..*]`` cardinality."""


class Feature:
    """One node of a feature diagram."""

    def __init__(
        self,
        name: str,
        children: Iterable["Feature"] = (),
        optional: bool = False,
        group: GroupType = GroupType.AND,
        cardinality: Cardinality = Cardinality(),
        description: str = "",
    ) -> None:
        self.name = name
        self.optional = optional
        self.group = group
        self.cardinality = cardinality
        self.description = description
        self.parent: Feature | None = None
        self.children: list[Feature] = []
        for child in children:
            self.add_child(child)

    def add_child(self, child: "Feature") -> "Feature":
        if child.parent is not None:
            raise FeatureModelError(
                f"feature {child.name!r} already has parent {child.parent.name!r}"
            )
        child.parent = self
        self.children.append(child)
        return child

    @property
    def mandatory(self) -> bool:
        return not self.optional

    def walk(self) -> Iterator["Feature"]:
        """This feature and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def ancestors(self) -> Iterator["Feature"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def clone(self) -> "Feature":
        """Deep copy of this subtree, detached from any parent."""
        return Feature(
            self.name,
            [child.clone() for child in self.children],
            optional=self.optional,
            group=self.group,
            cardinality=self.cardinality,
            description=self.description,
        )

    def __repr__(self) -> str:
        kind = "optional" if self.optional else "mandatory"
        return f"<Feature {self.name!r} ({kind}, {self.group.value})>"


def mandatory(
    name: str,
    *children: Feature,
    group: GroupType = GroupType.AND,
    cardinality: Cardinality = Cardinality(),
    description: str = "",
) -> Feature:
    """Build a mandatory feature."""
    return Feature(
        name,
        children,
        optional=False,
        group=group,
        cardinality=cardinality,
        description=description,
    )


def optional(
    name: str,
    *children: Feature,
    group: GroupType = GroupType.AND,
    cardinality: Cardinality = Cardinality(),
    description: str = "",
) -> Feature:
    """Build an optional feature."""
    return Feature(
        name,
        children,
        optional=True,
        group=group,
        cardinality=cardinality,
        description=description,
    )


def alternative(name: str, *children: Feature, **kwargs) -> Feature:
    """A feature whose children form an alternative (XOR) group."""
    kwargs.setdefault("group", GroupType.ALTERNATIVE)
    return Feature(name, children, **kwargs)


def or_group(name: str, *children: Feature, **kwargs) -> Feature:
    """A feature whose children form an OR group (pick at least one)."""
    kwargs.setdefault("group", GroupType.OR)
    return Feature(name, children, **kwargs)


class FeatureModel:
    """A feature diagram plus its cross-tree constraints.

    Feature names must be unique within a model; lookups, configurations
    and composition all address features by name.
    """

    def __init__(self, root: Feature, constraints: Iterable = ()) -> None:
        self.root = root
        self._by_name: dict[str, Feature] = {}
        for feature in root.walk():
            if feature.name in self._by_name:
                raise FeatureModelError(
                    f"duplicate feature name {feature.name!r} in model"
                )
            self._by_name[feature.name] = feature
        self.constraints = list(constraints)
        from .constraints import Constraint  # local import to avoid a cycle

        for constraint in self.constraints:
            if not isinstance(constraint, Constraint):
                raise FeatureModelError(
                    f"not a constraint: {constraint!r}"
                )
            for name in constraint.feature_names():
                self.feature(name)  # raises UnknownFeatureError if absent

    # -- lookups -----------------------------------------------------------

    def feature(self, name: str) -> Feature:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownFeatureError(
                f"model has no feature named {name!r}"
            ) from None

    def has_feature(self, name: str) -> bool:
        return name in self._by_name

    def feature_names(self) -> list[str]:
        return list(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._by_name.values())

    def leaves(self) -> list[Feature]:
        return [f for f in self if not f.children]

    def add_constraint(self, constraint) -> None:
        for name in constraint.feature_names():
            self.feature(name)
        self.constraints.append(constraint)

    def graft(self, parent_name: str, subtree: Feature) -> None:
        """Attach a new subtree under an existing feature.

        This is how extension feature diagrams (e.g. the sensor-network
        extensions of E9) plug into the base SQL model.
        """
        parent = self.feature(parent_name)
        for feature in subtree.walk():
            if feature.name in self._by_name:
                raise FeatureModelError(
                    f"cannot graft: feature {feature.name!r} already exists"
                )
        parent.add_child(subtree)
        for feature in subtree.walk():
            self._by_name[feature.name] = feature

    def __repr__(self) -> str:
        return f"<FeatureModel root={self.root.name!r}, {len(self)} features>"
