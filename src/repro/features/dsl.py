"""Textual feature-model DSL.

A compact notation for feature diagrams, used in tests and examples::

    model QuerySpecification {
        optional SetQuantifier alt { All Distinct }
        mandatory SelectList or {
            Asterisk
            SelectSublist [1..*] { DerivedColumn { optional As } }
        }
        mandatory TableExpression
        SetQuantifier requires SelectList ;
    }

Rules:

* features default to ``mandatory``; write ``optional`` to override,
* ``or`` / ``alt`` / ``and`` after the name sets the child group type,
* ``[m..n]`` / ``[m..*]`` sets clone cardinality,
* ``A requires B ;`` and ``A excludes B ;`` add cross-tree constraints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import FeatureModelError
from .constraints import Constraint, Excludes, Requires
from .model import Cardinality, Feature, FeatureModel, GroupType

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*|\#[^\n]*)
  | (?P<DOTS>\.\.)
  | (?P<INT>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>[{}\[\];*])
    """,
    re.VERBOSE,
)

_GROUP_WORDS = {
    "or": GroupType.OR,
    "alt": GroupType.ALTERNATIVE,
    "xor": GroupType.ALTERNATIVE,
    "and": GroupType.AND,
}


@dataclass(frozen=True, slots=True)
class _Tok:
    kind: str
    text: str
    line: int


def _tokenize(text: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    pos, line = 0, 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise FeatureModelError(
                f"unexpected character {text[pos]!r} in feature model (line {line})"
            )
        kind = match.lastgroup or ""
        lexeme = match.group()
        if kind == "IDENT":
            tokens.append(_Tok("IDENT", lexeme, line))
        elif kind == "INT":
            tokens.append(_Tok("INT", lexeme, line))
        elif kind == "DOTS":
            tokens.append(_Tok("..", lexeme, line))
        elif kind == "PUNCT":
            tokens.append(_Tok(lexeme, lexeme, line))
        line += lexeme.count("\n")
        pos = match.end()
    tokens.append(_Tok("EOF", "", line))
    return tokens


class _ModelReader:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._constraints: list[Constraint] = []

    @property
    def _current(self) -> _Tok:
        return self._tokens[self._index]

    def _advance(self) -> _Tok:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _Tok:
        token = self._current
        if token.kind != kind:
            raise FeatureModelError(
                f"expected {kind!r} but found {token.text or 'end of input'!r} "
                f"(line {token.line})"
            )
        return self._advance()

    def read(self) -> FeatureModel:
        self._expect_word("model")
        name = self._expect("IDENT").text
        root = Feature(name)
        self._expect("{")
        self._read_body(root)
        self._expect("}")
        return FeatureModel(root, self._constraints)

    def _expect_word(self, word: str) -> None:
        token = self._expect("IDENT")
        if token.text != word:
            raise FeatureModelError(
                f"expected {word!r} but found {token.text!r} (line {token.line})"
            )

    def _read_body(self, parent: Feature) -> None:
        while self._current.kind == "IDENT":
            # lookahead: `A requires B ;` vs a feature declaration
            if self._is_constraint():
                self._read_constraint()
            else:
                parent.add_child(self._read_feature())

    def _is_constraint(self) -> bool:
        nxt = self._tokens[self._index + 1]
        return nxt.kind == "IDENT" and nxt.text in ("requires", "excludes")

    def _read_constraint(self) -> None:
        left = self._expect("IDENT").text
        kind = self._expect("IDENT").text
        right = self._expect("IDENT").text
        self._expect(";")
        if kind == "requires":
            self._constraints.append(Requires(left, right))
        else:
            self._constraints.append(Excludes(left, right))

    def _read_feature(self) -> Feature:
        is_optional = False
        token = self._current
        if token.text in ("optional", "mandatory"):
            self._advance()
            is_optional = token.text == "optional"
        name = self._expect("IDENT").text
        cardinality = Cardinality()
        if self._current.kind == "[":
            cardinality = self._read_cardinality()
        group = GroupType.AND
        if self._current.kind == "IDENT" and self._current.text in _GROUP_WORDS:
            group = _GROUP_WORDS[self._advance().text]
        feature = Feature(name, optional=is_optional, group=group, cardinality=cardinality)
        if self._current.kind == "{":
            self._advance()
            self._read_body(feature)
            self._expect("}")
        return feature

    def _read_cardinality(self) -> Cardinality:
        self._expect("[")
        low = int(self._expect("INT").text)
        self._expect("..")
        if self._current.kind == "*":
            self._advance()
            high: int | None = None
        else:
            high = int(self._expect("INT").text)
        self._expect("]")
        return Cardinality(low, high)


def read_feature_model(text: str) -> FeatureModel:
    """Parse feature-model DSL text into a :class:`FeatureModel`."""
    return _ModelReader(text).read()
