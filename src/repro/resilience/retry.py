"""Bounded retry with exponential backoff and jitter.

Only *transient* failures are worth retrying: a file that momentarily
fails to read (NFS hiccup, anti-virus lock) may succeed a few
milliseconds later, while a missing file or a fingerprint mismatch will
fail identically forever.  :func:`is_transient_io_error` encodes that
split for the artifact-I/O paths; callers with other failure domains
pass their own ``should_retry``.

Jitter is multiplicative and drawn from an injectable RNG so tests can
pin the schedule exactly.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base_delay * multiplier**attempt``, capped.

    ``attempts`` counts total tries including the first; jitter scales
    each delay by ``1 + jitter * rand()`` to de-synchronize concurrent
    retriers.
    """

    attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.5


DEFAULT_RETRY_POLICY = RetryPolicy()


def is_transient_io_error(error: BaseException) -> bool:
    """Worth retrying?  Transient OS-level I/O failures only.

    ``FileNotFoundError`` is a *definitive* answer (cache miss), not a
    glitch — retrying it would just triple the latency of every cold
    start.
    """
    return isinstance(error, OSError) and not isinstance(
        error, FileNotFoundError
    )


def retry_call(
    fn: Callable,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    should_retry: Callable[[BaseException], bool] = is_transient_io_error,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
):
    """Call ``fn`` with up to ``policy.attempts`` tries.

    Non-retryable errors and the final attempt's error propagate
    unchanged.  ``on_retry(attempt, error)`` fires before each re-try,
    letting callers count retries in metrics.
    """
    if policy.attempts < 1:
        raise ValueError("RetryPolicy.attempts must be >= 1")
    rng = rng if rng is not None else random
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as error:
            attempt += 1
            if attempt >= policy.attempts or not should_retry(error):
                raise
            delay = min(
                policy.max_delay,
                policy.base_delay * policy.multiplier ** (attempt - 1),
            )
            delay *= 1.0 + policy.jitter * rng.random()
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(delay)
