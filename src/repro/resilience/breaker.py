"""Per-key circuit breakers for the composition pipeline.

A poison-pill feature selection — one whose composition or lint gate
deterministically fails — would otherwise re-run the whole expensive
compose/lint pipeline on *every* request for that fingerprint.  A
:class:`CircuitBreaker` trips after ``threshold`` consecutive failures
and fails fast for a ``cooldown`` window; after the cooldown a single
probe request is let through (half-open) to test whether the underlying
problem was fixed (e.g. a grammar unit was corrected and re-registered).

The classic three-state machine:

    closed --(threshold consecutive failures)--> open
    open --(cooldown elapsed)--> half-open (one probe allowed)
    half-open --(probe succeeds)--> closed
    half-open --(probe fails)--> open (cooldown restarts)
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip threshold and cooldown for one breaker.

    The default threshold is deliberately generous: legitimate callers
    sometimes probe a known-bad selection a few times in a row (tests
    assert the same E0303 twice), and only a sustained failure streak
    should shift them to fast-fail.
    """

    threshold: int = 5
    cooldown: float = 30.0


DEFAULT_BREAKER_POLICY = BreakerPolicy()


class CircuitBreaker:
    """Thread-safe three-state breaker guarding one fingerprint."""

    def __init__(
        self,
        policy: BreakerPolicy = DEFAULT_BREAKER_POLICY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # caller holds the lock
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.policy.cooldown
        ):
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In the half-open window only one probe is admitted at a time;
        concurrent requests keep failing fast until the probe reports.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._state = HALF_OPEN
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> bool:
        """Record one failure; returns True when this one trips the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                # failed probe: reopen and restart the cooldown
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                return True
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.policy.threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            remaining = self.policy.cooldown - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "failures": self._failures,
                "retry_after": (
                    max(
                        0.0,
                        self.policy.cooldown
                        - (self._clock() - self._opened_at),
                    )
                    if self._state == OPEN
                    else 0.0
                ),
            }

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} failures={self._failures}>"
