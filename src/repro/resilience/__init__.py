"""Resilience primitives for the parse service.

Four independent building blocks, composed by ``repro.service``:

- :mod:`~repro.resilience.faults` — deterministic, seedable fault
  injection at named sites, for reproducible chaos testing;
- :mod:`~repro.resilience.deadline` — absolute monotonic deadlines
  propagated from admission down into the IR parse driver;
- :mod:`~repro.resilience.breaker` — per-fingerprint circuit breakers
  that fail poison-pill configurations fast;
- :mod:`~repro.resilience.retry` — bounded exponential backoff with
  jitter for transient artifact-I/O failures.

Each module is dependency-free (stdlib only) and usable on its own.
"""

from repro.resilience.breaker import (
    CLOSED,
    DEFAULT_BREAKER_POLICY,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    SITES,
    FaultInjected,
    FaultPlan,
    FaultRule,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    is_transient_io_error,
    retry_call,
)

__all__ = [
    "CLOSED",
    "DEFAULT_BREAKER_POLICY",
    "DEFAULT_RETRY_POLICY",
    "HALF_OPEN",
    "OPEN",
    "SITES",
    "BreakerPolicy",
    "CircuitBreaker",
    "Deadline",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "is_transient_io_error",
    "retry_call",
]
