"""Propagatable wall-clock deadlines.

A :class:`Deadline` is an absolute point on a monotonic clock, created
once at admission time and handed down through the service, the
registry, and into the IR parse driver.  Passing the *absolute* point —
rather than a relative timeout — means every layer that checks it agrees
on how much time is actually left, no matter how long the request queued
before a worker picked it up.
"""

from __future__ import annotations

import time
from collections.abc import Callable


class Deadline:
    """An absolute monotonic-clock deadline.

    The clock is injectable so breaker/deadline tests can advance time
    explicitly instead of sleeping.
    """

    __slots__ = ("at", "_clock")

    def __init__(
        self, at: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.at = at
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.at

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining():.4f}s>"
