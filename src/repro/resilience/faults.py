"""Deterministic fault injection for the serving layer.

A :class:`FaultPlan` decides — reproducibly, from a seed — whether a
named *fault site* fails when the serving code reaches it.  The registry
and service call :meth:`FaultPlan.check` at every site listed in
:data:`SITES`; a firing check sleeps (injected latency), raises (injected
failure), or both.  Because every decision comes from a per-site
deterministic stream, a chaos run that found a bug can be replayed
exactly by pinning the seed, and the :meth:`FaultPlan.transcript` of
decisions can be shipped as a CI artifact.

Nothing in this module knows about grammars or parsers: a plan is just
"site name -> (probability, error, latency)" plus bookkeeping.  The
production path pays a single ``is None`` check when no plan is
installed.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass

#: Every fault site the serving layer guards.  Rules must name one of
#: these — a typo in a chaos plan should fail loudly, not silently test
#: nothing.
SITES = (
    "artifact.read.source",   # generated-source artifact read (registry)
    "artifact.read.ir",       # parse-program IR artifact read (registry)
    "artifact.write.source",  # generated-source artifact publish (registry)
    "artifact.write.ir",      # parse-program IR artifact publish (registry)
    "artifact.read.closures",   # closure artifact read (registry)
    "artifact.write.closures",  # closure artifact publish (registry)
    "artifact.read.lex",      # lexicon artifact read (worker bootstrap)
    "artifact.write.lex",     # lexicon artifact publish (registry)
    "compose",                # grammar composition (registry build lock)
    "program.compile",        # ParseProgram compilation (registry entry)
    "closure.compile",        # closure-backend compilation (registry entry)
    "hints.build",            # feature-hint provider construction (entry)
    "backend.parse",          # the primary backend parse (service)
    "worker.execute",         # the whole per-request worker body (service)
    "worker.spawn",           # process-pool creation/health (service)
)

#: Error types a randomized chaos plan draws from.  ``OSError`` exercises
#: the transient-I/O retry path at artifact sites; the others exercise
#: the degradation ladder and the never-crash guard.
CHAOS_ERRORS = (None, OSError, RuntimeError, ValueError)


class FaultInjected(Exception):
    """Default exception raised by a firing fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model unexpected infrastructure failures, so they must travel
    the same handling paths a genuine bug would.
    """


@dataclass(frozen=True)
class FaultRule:
    """Failure behavior for one site.

    Attributes:
        site: One of :data:`SITES`.
        probability: Chance in ``[0, 1]`` that a check fires.
        error: Exception type raised on fire; ``None`` injects latency
            only (the check returns normally after sleeping).
        latency: Seconds slept on fire, before raising.
        times: Maximum number of fires (``None`` = unlimited) — lets a
            test storm a site and then watch the service recover.
        after: Number of initial checks at the site that never fire.
    """

    site: str
    probability: float = 1.0
    error: type[BaseException] | None = FaultInjected
    latency: float = 0.0
    times: int | None = None
    after: int = 0


class FaultPlan:
    """A seeded, thread-safe schedule of failures at named sites.

    Args:
        rules: At most one :class:`FaultRule` per site; sites without a
            rule never fire.
        seed: Seeds one independent deterministic stream *per site*, so
            adding a rule for one site never perturbs the decisions made
            at another — a shrunk reproduction stays a reproduction.
    """

    def __init__(self, rules: tuple | list = (), seed: int | str = 0) -> None:
        self.seed = seed
        self._rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site not in SITES:
                raise ValueError(
                    f"unknown fault site {rule.site!r} "
                    f"(known: {', '.join(SITES)})"
                )
            if rule.site in self._rules:
                raise ValueError(f"duplicate fault rule for site {rule.site!r}")
            self._rules[rule.site] = rule
        self._lock = threading.Lock()
        # string seeds: random.Random hashes str/bytes deterministically
        # (unlike tuples, whose hash() is salted per process)
        self._streams = {
            site: random.Random(f"{seed}|{site}") for site in self._rules
        }
        self._checks: dict[str, int] = dict.fromkeys(self._rules, 0)
        self._fires: dict[str, int] = dict.fromkeys(self._rules, 0)
        self._transcript: list[dict] = []

    @classmethod
    def chaos(
        cls,
        seed: int | str,
        sites: tuple[str, ...] = SITES,
        probability: tuple[float, float] = (0.1, 0.4),
        max_latency: float = 0.002,
    ) -> "FaultPlan":
        """A randomized-but-reproducible plan covering every site.

        Probabilities, error types, and (tiny) latencies are drawn from
        ``seed``; the same seed always builds the same plan.
        """
        rng = random.Random(f"chaos|{seed}")
        rules = []
        for site in sites:
            error = rng.choice(CHAOS_ERRORS)
            rules.append(
                FaultRule(
                    site=site,
                    probability=rng.uniform(*probability),
                    error=error if error is not None else FaultInjected,
                    latency=(
                        rng.uniform(0.0, max_latency)
                        if rng.random() < 0.3 else 0.0
                    ),
                )
            )
        return cls(rules, seed=seed)

    # -- the hot call -------------------------------------------------------

    def check(self, site: str) -> None:
        """Record one arrival at ``site``; sleep and/or raise if it fires."""
        rule = self._rules.get(site)
        if rule is None:
            return
        with self._lock:
            n = self._checks[site]
            self._checks[site] = n + 1
            fire = (
                n >= rule.after
                and (rule.times is None or self._fires[site] < rule.times)
                and self._streams[site].random() < rule.probability
            )
            if fire:
                self._fires[site] += 1
            self._transcript.append(
                {
                    "seq": len(self._transcript),
                    "site": site,
                    "check": n,
                    "fired": fire,
                    "error": rule.error.__name__ if fire and rule.error else None,
                    "latency": rule.latency if fire else 0.0,
                }
            )
        if not fire:
            return
        if rule.latency:
            time.sleep(rule.latency)
        if rule.error is not None:
            raise rule.error(
                f"injected fault at {site!r} (check #{n}, seed {self.seed!r})"
            )

    # -- introspection ------------------------------------------------------

    def fired(self, site: str | None = None) -> int:
        """Fires at one site, or across the whole plan."""
        with self._lock:
            if site is not None:
                return self._fires.get(site, 0)
            return sum(self._fires.values())

    def checked(self, site: str) -> int:
        with self._lock:
            return self._checks.get(site, 0)

    def transcript(self) -> list[dict]:
        """Every decision taken so far, in order (a copy)."""
        with self._lock:
            return [dict(entry) for entry in self._transcript]

    def to_json(self, indent: int | None = 2) -> str:
        """Transcript + plan parameters, for the CI failure artifact."""
        with self._lock:
            payload = {
                "kind": "repro-fault-transcript",
                "seed": self.seed,
                "rules": [
                    {
                        "site": rule.site,
                        "probability": rule.probability,
                        "error": rule.error.__name__ if rule.error else None,
                        "latency": rule.latency,
                        "times": rule.times,
                        "after": rule.after,
                    }
                    for rule in self._rules.values()
                ],
                "checks": dict(self._checks),
                "fires": dict(self._fires),
                "transcript": [dict(entry) for entry in self._transcript],
            }
        return json.dumps(payload, indent=indent)

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed!r} sites={sorted(self._rules)} "
            f"fired={self.fired()}>"
        )
