"""Product-line pass: pairwise feature-interaction analysis.

The product line defines exponentially many products, so lint cannot
compose them all.  Instead this pass checks every *valid 2-feature
combination* — the classical pairwise-coverage cut of the configuration
space — using per-unit :class:`~repro.core.unit.UnitSignature` summaries
only.  No grammar is composed: two units interact badly exactly when
their composition-relevant surfaces collide, and that surface (token
definitions, rule names, removals) is visible from the signatures.

A feature pair is *valid* (co-selectable) unless

* a model-level ``Excludes`` constraint separates the two features,
* a unit-level ``excludes`` does,
* or the features are siblings in an ALTERNATIVE (XOR) group.

Findings carry both features and the colliding unit elements, so the
report reads "features A and B define token T incompatibly" with full
provenance and without ever building product A+B.
"""

from __future__ import annotations

from itertools import combinations

from ..core.product_line import GrammarProductLine
from ..core.unit import UnitSignature, unit_signature
from ..features.constraints import Excludes
from ..features.model import FeatureModel, GroupType
from .codes import FEATURE_REMOVES_RULE, FEATURE_TOKEN_CONFLICT
from .report import LINE_TARGET_PREFIX, Finding


def excluded_pairs(model: FeatureModel) -> set[frozenset[str]]:
    """Feature pairs the model itself rules out.

    Covers cross-tree ``Excludes`` constraints and ALTERNATIVE-group
    siblinghood (XOR children are never selected together).
    """
    pairs: set[frozenset[str]] = set()
    for constraint in model.constraints:
        if isinstance(constraint, Excludes):
            pairs.add(frozenset((constraint.feature, constraint.excluded)))
    for feature in model:
        if feature.group is GroupType.ALTERNATIVE and len(feature.children) > 1:
            names = [child.name for child in feature.children]
            pairs.update(frozenset(p) for p in combinations(names, 2))
    return pairs


def pair_is_valid(
    left: UnitSignature,
    right: UnitSignature,
    excluded: set[frozenset[str]],
) -> bool:
    """Can the two features appear in one valid configuration?"""
    if frozenset((left.feature, right.feature)) in excluded:
        return False
    if right.feature in left.excludes or left.feature in right.excludes:
        return False
    return True


def check_feature_interactions(
    line: GrammarProductLine,
) -> tuple[list[Finding], int]:
    """L0120 / L0121 over all valid 2-feature combinations of ``line``.

    Returns ``(findings, pairs_checked)`` where ``pairs_checked`` counts
    the valid pairs actually examined.
    """
    target = f"{LINE_TARGET_PREFIX}{line.name}"
    signatures = [unit_signature(u) for u in line.units()]
    excluded = excluded_pairs(line.model)

    findings: list[Finding] = []
    pairs_checked = 0
    for left, right in combinations(signatures, 2):
        if not pair_is_valid(left, right, excluded):
            continue
        pairs_checked += 1
        pair = f"{left.feature}+{right.feature}"
        for token_name in left.token_conflicts(right):
            findings.append(
                Finding(
                    code=FEATURE_TOKEN_CONFLICT,
                    message=(
                        f"features '{left.feature}' and '{right.feature}' "
                        f"define token '{token_name}' incompatibly — any "
                        "product selecting both fails token-merge"
                    ),
                    target=target,
                    anchor=f"{pair}/{token_name}",
                    feature=left.feature,
                    detail={
                        "features": [left.feature, right.feature],
                        "token": token_name,
                        "definitions": [
                            list(left.tokens[token_name]),
                            list(right.tokens[token_name]),
                        ],
                    },
                )
            )
        for remover, contributor in ((left, right), (right, left)):
            removed = sorted(remover.removes & contributor.rules)
            for rule_name in removed:
                findings.append(
                    Finding(
                        code=FEATURE_REMOVES_RULE,
                        message=(
                            f"feature '{remover.feature}' removes rule "
                            f"'{rule_name}' that co-selectable feature "
                            f"'{contributor.feature}' contributes — the "
                            "outcome depends on composition order"
                        ),
                        target=target,
                        anchor=f"{pair}/{rule_name}",
                        rule=rule_name,
                        feature=remover.feature,
                        detail={
                            "remover": remover.feature,
                            "contributor": contributor.feature,
                            "rule": rule_name,
                        },
                    )
                )
    return findings, pairs_checked
