"""The lint code registry: every finding the analyzer can emit.

Codes follow the ``E``-code convention of :mod:`repro.diagnostics` but
live in their own ``L01xx`` range: an ``E`` code is a runtime failure of
one parse, an ``L`` code is a *static* defect of the grammar or product
line itself, discovered before any input is parsed.  Program-level codes
occupy ``L0101``–``L0107``; product-line (feature-interaction) codes
start at ``L0120``.

Every code carries a default :class:`~repro.diagnostics.model.Severity`:

* **error** — the product misbehaves on some input (diverges, drops a
  keyword); composition should refuse it.
* **warning** — the grammar is suspicious but the ordered-backtracking
  parser gives it a defined meaning (e.g. FIRST/FIRST overlaps).
* **info** — hygiene findings (unused declarations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics.model import Severity


@dataclass(frozen=True, slots=True)
class LintCode:
    """One lint rule: stable code, slug, default severity, summary."""

    code: str
    name: str
    severity: Severity
    summary: str

    def __str__(self) -> str:
        return self.code


def severity_label(severity: Severity) -> str:
    """Lint-report label for a severity (``NOTE`` reads as ``info``)."""
    return "info" if severity is Severity.NOTE else severity.label()


def severity_from_label(label: str) -> Severity:
    """Inverse of :func:`severity_label` (for JSON round-trips)."""
    if label == "info":
        return Severity.NOTE
    if label == "warning":
        return Severity.WARNING
    return Severity.ERROR


# -- program-level passes ------------------------------------------------------

UNREACHABLE_RULE = LintCode(
    "L0101", "unreachable-rule", Severity.WARNING,
    "rule cannot be reached from the start rule",
)
DEAD_ALTERNATIVE = LintCode(
    "L0102", "dead-choice-alternative", Severity.WARNING,
    "every FIRST terminal of the alternative is claimed earlier",
)
NULLABLE_LOOP = LintCode(
    "L0103", "nullable-loop", Severity.ERROR,
    "repetition body can match the empty string (divergence risk)",
)
FIRST_FIRST_CONFLICT = LintCode(
    "L0104", "first-first-conflict", Severity.WARNING,
    "alternatives of one choice compete for a lookahead terminal",
)
FIRST_FOLLOW_CONFLICT = LintCode(
    "L0105", "first-follow-conflict", Severity.WARNING,
    "nullable rule whose FIRST and FOLLOW sets overlap",
)
SHADOWED_TOKEN = LintCode(
    "L0106", "shadowed-token", Severity.ERROR,
    "the scanner can never emit the token (masked by another pattern)",
)
UNUSED_TOKEN = LintCode(
    "L0107", "unused-token", Severity.NOTE,
    "token is declared but no grammar rule references it",
)

# -- product-line passes -------------------------------------------------------

FEATURE_TOKEN_CONFLICT = LintCode(
    "L0120", "feature-token-conflict", Severity.ERROR,
    "two co-selectable features define one token incompatibly",
)
FEATURE_REMOVES_RULE = LintCode(
    "L0121", "feature-removes-rule", Severity.WARNING,
    "one feature removes a rule another co-selectable feature contributes",
)

#: Every registered code, by code string (the ``repro lint`` docs table).
ALL_CODES: dict[str, LintCode] = {
    c.code: c
    for c in (
        UNREACHABLE_RULE,
        DEAD_ALTERNATIVE,
        NULLABLE_LOOP,
        FIRST_FIRST_CONFLICT,
        FIRST_FOLLOW_CONFLICT,
        SHADOWED_TOKEN,
        UNUSED_TOKEN,
        FEATURE_TOKEN_CONFLICT,
        FEATURE_REMOVES_RULE,
    )
}


def code_for(code: str) -> LintCode:
    """Look up a registered code; unknown codes (newer reports read by
    older tooling) degrade to a generic warning-grade stand-in."""
    known = ALL_CODES.get(code)
    if known is not None:
        return known
    return LintCode(code, "unknown", Severity.WARNING, "unknown lint code")
