"""Static analysis of grammars, parse programs, and the product line.

``repro.lint`` is the static half of the quality story: where
:mod:`repro.conformance` runs inputs through composed parsers, lint
finds defects *before any input exists* — unreachable rules, dead CHOICE
alternatives, nullable loops, shadowed tokens, and feature pairs that
cannot compose.  Findings are graded (error/warning/info), carry
feature provenance from the composition trace, serialize as the
versioned ``repro-lint-report`` JSON artifact, and can be suppressed by
a reviewed baseline file.

Typical use::

    from repro.lint import lint_sql_dialects

    report = lint_sql_dialects()
    print(report.render())
    ok = report.gate(fail_on="error")
"""

from .analyzer import (
    analyze_grammar,
    analyze_product,
    lint_products,
    lint_sql_dialects,
    run_program_passes,
    token_origins,
)
from .baseline import Baseline, BaselineEntry, render_baseline
from .codes import ALL_CODES, LintCode, code_for, severity_label
from .interactions import check_feature_interactions
from .report import (
    LINT_REPORT_KIND,
    LINT_REPORT_VERSION,
    AnalysisReport,
    Finding,
    TargetReport,
)

__all__ = [
    "ALL_CODES",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LINT_REPORT_KIND",
    "LINT_REPORT_VERSION",
    "LintCode",
    "TargetReport",
    "analyze_grammar",
    "analyze_product",
    "check_feature_interactions",
    "code_for",
    "lint_products",
    "lint_sql_dialects",
    "render_baseline",
    "run_program_passes",
    "severity_label",
    "token_origins",
]
