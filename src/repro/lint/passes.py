"""Program-level lint passes over one compiled product.

Every pass reads the :class:`~repro.parsing.program.ParseProgram` (the
single compiled semantics source) plus, for the scanner/token passes,
the composed grammar's token set.  Rule provenance — *which feature* a
defective rule came from — is attached from the composition trace's
origin map when the analyzed product carries one.

Passes (codes in :mod:`repro.lint.codes`):

====== ======================= ========================================
L0101  unreachable rules       BFS over CALL edges from the start rule
L0102  dead CHOICE alternative FIRST set fully claimed by earlier alts
L0103  nullable-loop body      LOOP/SEPLOOP item can match epsilon
L0104  FIRST/FIRST conflict    partial lookahead overlap inside a CHOICE
L0105  FIRST/FOLLOW conflict   nullable rule, FIRST ∩ FOLLOW non-empty
L0106  shadowed token          scanner can never emit the terminal
L0107  unused token            declared terminal never referenced
====== ======================= ========================================

Decision anchors (``rule/choice[k]``, ``rule/loop[k]``) number decision
points *per rule* in execution order, so baseline keys survive edits to
unrelated rules.
"""

from __future__ import annotations

from typing import Mapping

from ..grammar.grammar import Grammar
from ..lexer.spec import compile_master_pattern
from ..lexer.token import EOF
from ..parsing.first_follow import GrammarAnalysis
from ..parsing.program import (
    OP_CHOICE,
    OP_LOOP,
    OP_SEPLOOP,
    ParseProgram,
    instruction_nullable,
    reachable_rules,
    rule_nullability,
    walk_instructions,
)
from .codes import (
    DEAD_ALTERNATIVE,
    FIRST_FIRST_CONFLICT,
    FIRST_FOLLOW_CONFLICT,
    NULLABLE_LOOP,
    SHADOWED_TOKEN,
    UNREACHABLE_RULE,
    UNUSED_TOKEN,
)
from .report import Finding

#: Identifier-shaped scanner rules keywords are promoted from (matches
#: the :class:`repro.lexer.scanner.Scanner` default).
IDENTIFIER_RULES = ("IDENTIFIER",)


def _fmt_terms(terms, limit: int = 6) -> str:
    names = sorted(terms)
    if len(names) > limit:
        return ", ".join(names[:limit]) + f", … +{len(names) - limit}"
    return ", ".join(names)


def check_reachability(
    target: str, program: ParseProgram, origins: Mapping[str, str]
) -> list[Finding]:
    """L0101 — rules no CALL chain from the start rule can reach."""
    reachable = reachable_rules(program)
    start = program.start_name()
    findings = []
    for rid, name in enumerate(program.rule_names):
        if rid in reachable:
            continue
        findings.append(
            Finding(
                code=UNREACHABLE_RULE,
                message=(
                    f"rule '{name}' is unreachable from start rule "
                    f"'{start}'"
                ),
                target=target,
                anchor=name,
                rule=name,
                feature=origins.get(name),
            )
        )
    return findings


def check_choices(
    target: str, program: ParseProgram, origins: Mapping[str, str]
) -> list[Finding]:
    """L0102 / L0104 — dead and conflicting CHOICE alternatives.

    An alternative whose whole (non-empty) FIRST set is claimed by
    earlier alternatives is *dead* under LL(1) dispatch: the interpreter
    only reaches it by backtracking after an earlier candidate fails, so
    it silently changes meaning when an earlier feature composes in
    (L0102).  A partial overlap is the milder FIRST/FIRST conflict
    (L0104); so is a choice with two nullable alternatives, where the
    second epsilon derivation can never be chosen.
    """
    findings = []
    for rid, name in enumerate(program.rule_names):
        feature = origins.get(name)
        n_choices = 0
        for instr in walk_instructions(program.code[rid]):
            if instr[0] != OP_CHOICE:
                continue
            anchor = f"{name}/choice[{n_choices}]"
            n_choices += 1
            firsts, nullables = instr[5], instr[6]
            claimed: set[str] = set()
            for index, first in enumerate(firsts):
                overlap = first & claimed
                if first and overlap == first:
                    findings.append(
                        Finding(
                            code=DEAD_ALTERNATIVE,
                            message=(
                                f"rule '{name}': alternative {index} of "
                                f"{anchor} is dead — every FIRST terminal "
                                f"({_fmt_terms(first)}) is claimed by an "
                                "earlier alternative"
                            ),
                            target=target,
                            anchor=f"{anchor}[{index}]",
                            rule=name,
                            feature=feature,
                            detail={"terminals": sorted(first)},
                        )
                    )
                elif overlap:
                    findings.append(
                        Finding(
                            code=FIRST_FIRST_CONFLICT,
                            message=(
                                f"rule '{name}': alternative {index} of "
                                f"{anchor} competes with an earlier "
                                "alternative for lookahead "
                                f"{_fmt_terms(overlap)} (ordered "
                                "backtracking decides)"
                            ),
                            target=target,
                            anchor=f"{anchor}[{index}]",
                            rule=name,
                            feature=feature,
                            detail={"terminals": sorted(overlap)},
                        )
                    )
                claimed |= first
            nullable_indices = [
                index for index, nullable in enumerate(nullables) if nullable
            ]
            if len(nullable_indices) > 1:
                findings.append(
                    Finding(
                        code=FIRST_FIRST_CONFLICT,
                        message=(
                            f"rule '{name}': alternatives "
                            f"{nullable_indices} of {anchor} can all "
                            "derive the empty string; only the first "
                            "epsilon derivation is ever used"
                        ),
                        target=target,
                        anchor=f"{anchor}[epsilon]",
                        rule=name,
                        feature=feature,
                        detail={"alternatives": nullable_indices},
                    )
                )
    return findings


def check_loops(
    target: str, program: ParseProgram, origins: Mapping[str, str]
) -> list[Finding]:
    """L0103 — repetition bodies that can match the empty string.

    A LOOP whose body derives epsilon makes zero progress per iteration;
    at parse time only the fuel budget (E0202) stands between such a
    grammar and an infinite loop, so statically this is error-grade.
    """
    nullable = rule_nullability(program)
    findings = []
    for rid, name in enumerate(program.rule_names):
        feature = origins.get(name)
        counters = {OP_LOOP: 0, OP_SEPLOOP: 0}
        for instr in walk_instructions(program.code[rid]):
            op = instr[0]
            if op not in (OP_LOOP, OP_SEPLOOP):
                continue
            kind = "loop" if op == OP_LOOP else "seploop"
            anchor = f"{name}/{kind}[{counters[op]}]"
            counters[op] += 1
            if not instruction_nullable(instr[1], nullable):
                continue
            findings.append(
                Finding(
                    code=NULLABLE_LOOP,
                    message=(
                        f"rule '{name}': the body of {anchor} can match "
                        "the empty string — the repetition makes no "
                        "progress and can loop forever"
                    ),
                    target=target,
                    anchor=anchor,
                    rule=name,
                    feature=feature,
                )
            )
    return findings


def check_first_follow(
    target: str,
    program: ParseProgram,
    analysis: GrammarAnalysis,
    origins: Mapping[str, str],
) -> list[Finding]:
    """L0105 — nullable rules whose FIRST and FOLLOW sets overlap.

    When such a rule's epsilon derivation is taken on a terminal that is
    also in its FIRST set, the parser has committed to "skip" where
    "consume" was possible — the classical LL(1) FIRST/FOLLOW conflict,
    reported with the rule's feature origin.
    """
    findings = []
    for name in program.rule_names:
        overlap = analysis.first_follow_overlap(name)
        if not overlap:
            continue
        findings.append(
            Finding(
                code=FIRST_FOLLOW_CONFLICT,
                message=(
                    f"rule '{name}' is nullable and its FIRST and FOLLOW "
                    f"sets share {_fmt_terms(overlap)}"
                ),
                target=target,
                anchor=name,
                rule=name,
                feature=origins.get(name),
                detail={"terminals": sorted(overlap)},
            )
        )
    return findings


def check_token_shadowing(
    target: str,
    grammar: Grammar,
    token_origins: Mapping[str, str] | None = None,
    identifier_rules: tuple[str, ...] = IDENTIFIER_RULES,
) -> list[Finding]:
    """L0106 — terminals the composed scanner can never emit.

    The scanner matches keywords as identifiers first and promotes them
    (see :mod:`repro.lexer.scanner`), so a keyword is reachable only if
    the master pattern sends its text through an identifier rule.  A
    keyword matched by some other pattern, matched only partially, or
    matched by nothing is statically dead: every input meant to hit it
    scans as something else, and the grammar rule behind it can never
    fire.  Literal (fixed-text) tokens are checked the same way against
    longest-match shadowing by patterns.
    """
    token_origins = token_origins or {}
    master = compile_master_pattern(grammar.tokens)
    findings = []

    def shadow_finding(name: str, reason: str) -> Finding:
        return Finding(
            code=SHADOWED_TOKEN,
            message=f"token '{name}' can never be scanned: {reason}",
            target=target,
            anchor=name,
            feature=token_origins.get(name),
        )

    for definition in grammar.tokens:
        if definition.skip:
            continue
        if definition.is_keyword:
            # promotion upper-cases the lexeme, so any case variant of
            # the word reaches the keyword — the word is shadowed only
            # if NO variant scans as an identifier
            text = definition.pattern  # the upper-cased word itself
            hits = []
            for variant in (text, text.lower(), text.capitalize()):
                match = master.match(variant)
                if match is not None and match.end() == len(variant):
                    if match.lastgroup in identifier_rules:
                        break
                    hits.append(match.lastgroup)
            else:
                if hits:
                    findings.append(
                        shadow_finding(
                            definition.name,
                            f"its text {text!r} is matched by token "
                            f"'{hits[0]}', so keyword promotion never "
                            "sees it",
                        )
                    )
                else:
                    findings.append(
                        shadow_finding(
                            definition.name,
                            "no identifier pattern matches its text "
                            f"{text!r}",
                        )
                    )
        elif definition.kind == "literal":
            match = master.match(definition.pattern)
            if match is not None and match.lastgroup != definition.name:
                findings.append(
                    shadow_finding(
                        definition.name,
                        f"its text {definition.pattern!r} is matched by "
                        f"token '{match.lastgroup}' first",
                    )
                )
    return findings


def check_unused_tokens(
    target: str,
    grammar: Grammar,
    token_origins: Mapping[str, str] | None = None,
) -> list[Finding]:
    """L0107 — declared, non-skip tokens no grammar rule references."""
    token_origins = token_origins or {}
    referenced = grammar.referenced_terminals()
    findings = []
    for definition in grammar.tokens:
        if definition.skip or definition.name == EOF:
            continue
        if definition.name in referenced:
            continue
        findings.append(
            Finding(
                code=UNUSED_TOKEN,
                message=(
                    f"token '{definition.name}' is declared but no "
                    "grammar rule references it"
                ),
                target=target,
                anchor=definition.name,
                feature=token_origins.get(definition.name),
            )
        )
    return findings
