"""Baseline (suppression) files for ``repro lint``.

A baseline is the reviewed debt list: findings a human looked at and
decided to live with.  The file is plain text, one pattern per line,
matched against each finding's stable ``key`` (``CODE:target:anchor``).
Patterns are simplified globs: ``*`` matches any run of characters,
``?`` any single character, everything else is literal — in particular
``[`` / ``]`` are ordinary characters, because anchors like
``rule/choice[0][2]`` contain them::

    # repro lint baseline — keep a comment on every entry
    L0104:sql-core:query_expression/choice[0]   # backtracking resolves it
    L0107:sql-*:DOLLAR                          # reserved for extensions
    L0102:*                                     # blanket (discouraged)

``#`` starts a comment (full-line or trailing); blank lines are ignored.
Entries that never match anything are reported by
:meth:`Baseline.unused_entries` so stale suppressions rot visibly, not
silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from os import PathLike
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .report import Finding


@lru_cache(maxsize=1024)
def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile a baseline glob: ``*``/``?`` wildcards, all else literal.

    Deliberately *not* :mod:`fnmatch`: finding keys contain ``[k]``
    anchor indices, which fnmatch would misread as character classes.
    """
    escaped = re.escape(pattern).replace(r"\*", ".*").replace(r"\?", ".")
    return re.compile(escaped + r"\Z")


@dataclass
class BaselineEntry:
    """One suppression pattern plus its provenance in the file."""

    pattern: str
    comment: str = ""
    line: int = 0
    used: bool = field(default=False, compare=False)

    def matches(self, key: str) -> bool:
        if _compile_pattern(self.pattern).match(key):
            self.used = True
            return True
        return False


class Baseline:
    """A parsed baseline file."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def parse(cls, text: str) -> "Baseline":
        entries = []
        for line_no, raw in enumerate(text.splitlines(), start=1):
            body, _, comment = raw.partition("#")
            pattern = body.strip()
            if not pattern:
                continue
            entries.append(
                BaselineEntry(
                    pattern=pattern, comment=comment.strip(), line=line_no
                )
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str | PathLike) -> "Baseline":
        return cls.parse(Path(path).read_text())

    def matches(self, finding: "Finding") -> bool:
        """Does any entry suppress this finding?

        Every entry is consulted (not just the first match) so *all*
        entries covering a finding are marked used.
        """
        key = finding.key
        hit = False
        for entry in self.entries:
            if entry.matches(key):
                hit = True
        return hit

    def unused_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing — candidates for deletion."""
        return [entry for entry in self.entries if not entry.used]

    def __len__(self) -> int:
        return len(self.entries)


def render_baseline(findings: Iterable["Finding"]) -> str:
    """Seed a baseline file from current findings (``--write-baseline``).

    Each entry is emitted with the finding's message as the trailing
    comment, so the reviewed-debt requirement ("a comment per entry")
    starts satisfied rather than empty.
    """
    lines = [
        "# repro lint baseline — one pattern per line, matched against",
        "# CODE:target:anchor keys; keep a comment on every entry.",
    ]
    for finding in findings:
        lines.append(f"{finding.key}  # {finding.message}")
    return "\n".join(lines) + "\n"
