"""Analyzer orchestration: products and product lines in, report out.

:func:`analyze_product` runs every program-level pass over one composed
product (compiling its parse program if the caller has none to share)
and wires provenance in from the composition trace.
:func:`analyze_grammar` does the same for a hand-built grammar with no
product line behind it.  :func:`lint_products` adds the pairwise
feature-interaction pass and assembles the versioned
:class:`~repro.lint.report.AnalysisReport`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.product_line import ComposedProduct, GrammarProductLine
from ..grammar.grammar import Grammar
from ..parsing.first_follow import GrammarAnalysis
from ..parsing.program import ParseProgram, compile_program
from .baseline import Baseline
from .interactions import check_feature_interactions
from .passes import (
    IDENTIFIER_RULES,
    check_choices,
    check_first_follow,
    check_loops,
    check_reachability,
    check_token_shadowing,
    check_unused_tokens,
)
from .report import AnalysisReport, Finding, TargetReport

_EMPTY: Mapping[str, str] = {}


def run_program_passes(
    target: str,
    grammar: Grammar,
    program: ParseProgram,
    analysis: GrammarAnalysis | None = None,
    origins: Mapping[str, str] | None = None,
    token_origins: Mapping[str, str] | None = None,
    identifier_rules: tuple[str, ...] = IDENTIFIER_RULES,
) -> list[Finding]:
    """Every program-level pass (L0101–L0107) over one compiled product."""
    if analysis is None:
        analysis = GrammarAnalysis(grammar)
    origins = origins or _EMPTY
    findings: list[Finding] = []
    findings += check_reachability(target, program, origins)
    findings += check_choices(target, program, origins)
    findings += check_loops(target, program, origins)
    findings += check_first_follow(target, program, analysis, origins)
    findings += check_token_shadowing(
        target, grammar, token_origins, identifier_rules
    )
    findings += check_unused_tokens(target, grammar, token_origins)
    return findings


def token_origins(product: ComposedProduct) -> dict[str, str]:
    """Token name -> feature whose unit first defined it.

    Mirrors the first-contribution semantics of the rule-origin trace:
    token merge keeps the first definition, so the first unit in the
    composition sequence that declares a token owns it.
    """
    if product.line is None:
        return {}
    origins: dict[str, str] = {}
    for feature in product.sequence:
        unit = product.line.unit_for(feature)
        if unit is None:
            continue
        for definition in unit.tokens:
            origins.setdefault(definition.name, feature)
    return origins


def analyze_product(
    product: ComposedProduct,
    program: ParseProgram | None = None,
    analysis: GrammarAnalysis | None = None,
) -> TargetReport:
    """All program-level passes over one composed product."""
    if analysis is None:
        analysis = GrammarAnalysis(product.grammar)
    if program is None:
        program = product.program(analysis=analysis)
    findings = run_program_passes(
        product.name,
        product.grammar,
        program,
        analysis=analysis,
        origins=product.rule_origins(),
        token_origins=token_origins(product),
    )
    digest = getattr(product.fingerprint, "digest", None)
    return TargetReport(
        target=product.name, fingerprint=digest, findings=tuple(findings)
    )


def analyze_grammar(
    grammar: Grammar,
    target: str | None = None,
    program: ParseProgram | None = None,
) -> TargetReport:
    """Program-level passes over a grammar with no product line behind it."""
    analysis = GrammarAnalysis(grammar)
    if program is None:
        program = compile_program(grammar, analysis=analysis)
    findings = run_program_passes(
        target or grammar.name, grammar, program, analysis=analysis
    )
    return TargetReport(
        target=target or grammar.name,
        fingerprint=program.fingerprint,
        findings=tuple(findings),
    )


def lint_products(
    products: Sequence[ComposedProduct],
    line: GrammarProductLine | None = None,
    interactions: bool = True,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """The full ``repro lint`` run: products + optional interaction pass.

    ``line`` defaults to the product line of the first product; pass it
    explicitly (or ``interactions=False``) when linting loose grammars.
    """
    targets = [analyze_product(product) for product in products]
    pairs_checked = 0
    if line is None and products:
        line = products[0].line
    if interactions and line is not None:
        pair_findings, pairs_checked = check_feature_interactions(line)
        targets.append(
            TargetReport(
                target=f"line:{line.name}",
                fingerprint=None,
                findings=tuple(pair_findings),
            )
        )
    report = AnalysisReport(targets, pairs_checked=pairs_checked)
    if baseline is not None:
        report = report.apply_baseline(baseline)
    return report


def lint_sql_dialects(
    names: Iterable[str] | None = None,
    interactions: bool = True,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Lint the preset SQL dialects (the CI ``lint-grammar`` entry point)."""
    from ..sql.dialects import build_dialect, dialect_names
    from ..sql.product_line import build_sql_product_line

    selected = list(names) if names is not None else dialect_names()
    products = [build_dialect(name) for name in selected]
    return lint_products(
        products,
        line=build_sql_product_line(),
        interactions=interactions,
        baseline=baseline,
    )
