"""Lint findings and the versioned ``repro-lint-report`` artifact.

A :class:`Finding` is one static defect, carrying the
:class:`~repro.lint.codes.LintCode`, the product (or product line) it was
found in, the rule/feature provenance the PR-4 composition trace
supplies, and a stable suppression ``key`` the baseline file matches
against.  Findings convert to
:class:`~repro.diagnostics.model.Diagnostic` objects, so every renderer
that understands parse errors understands lint output too.

:class:`AnalysisReport` aggregates per-target findings plus the
product-line interaction pass and serializes as versioned JSON
(``kind: repro-lint-report``, v1) through the same envelope plumbing the
coverage and conformance reports use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping

from ..conformance.report import parse_report_envelope, report_envelope
from ..diagnostics.model import Diagnostic, Severity
from .codes import LintCode, code_for, severity_from_label, severity_label

if TYPE_CHECKING:  # pragma: no cover
    from .baseline import Baseline

#: JSON schema version of the lint report artifact.
LINT_REPORT_VERSION = 1

LINT_REPORT_KIND = "repro-lint-report"

#: Target name used for product-line (pairwise interaction) findings.
LINE_TARGET_PREFIX = "line:"


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    Attributes:
        code: The lint rule that fired.
        message: Human-readable, single-line description.
        target: Product name (program-level passes) or
            ``line:<product-line>`` (interaction pass).
        anchor: Stable location within the target — a rule name, a
            ``rule/choice[k]`` decision label, a token name, or a
            ``FeatureA+FeatureB/token`` pair key.  Together with the code
            and target it forms the suppression :attr:`key`.
        rule: Grammar rule the finding is about, when one exists.
        feature: Originating feature (composition-trace provenance for
            rules; the contributing unit for token findings).
        detail: Structured extras (terminal lists, pattern texts).
        severity: Graded severity; defaults to the code's default.
    """

    code: LintCode
    message: str
    target: str
    anchor: str
    rule: str | None = None
    feature: str | None = None
    detail: Mapping[str, object] = field(default_factory=dict)
    severity: Severity | None = None

    @property
    def graded(self) -> Severity:
        return self.severity if self.severity is not None else self.code.severity

    @property
    def key(self) -> str:
        """Stable identity the baseline file matches against."""
        return f"{self.code.code}:{self.target}:{self.anchor}"

    def to_diagnostic(self) -> Diagnostic:
        """The finding as a standard positionless diagnostic."""
        return Diagnostic(
            message=f"{self.target}: {self.message}",
            span=None,
            severity=self.graded,
            code=self.code.code,
        )

    def format(self) -> str:
        """One text line, mirroring ``Diagnostic.format`` for lint codes."""
        origin = f" [from feature {self.feature}]" if self.feature else ""
        return (
            f"{severity_label(self.graded)}[{self.code.code}] "
            f"{self.target}: {self.message}{origin}"
        )

    def as_dict(self) -> dict:
        payload: dict[str, object] = {
            "code": self.code.code,
            "severity": severity_label(self.graded),
            "message": self.message,
            "target": self.target,
            "anchor": self.anchor,
            "key": self.key,
        }
        if self.rule is not None:
            payload["rule"] = self.rule
        if self.feature is not None:
            payload["feature"] = self.feature
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Finding":
        code = code_for(str(payload["code"]))
        return cls(
            code=code,
            message=str(payload["message"]),
            target=str(payload["target"]),
            anchor=str(payload.get("anchor", "")),
            rule=payload.get("rule"),  # type: ignore[arg-type]
            feature=payload.get("feature"),  # type: ignore[arg-type]
            detail=dict(payload.get("detail", {})),  # type: ignore[arg-type]
            severity=severity_from_label(str(payload["severity"])),
        )


@dataclass(frozen=True)
class TargetReport:
    """Findings of one analysis target (a product, or the line itself)."""

    target: str
    fingerprint: str | None
    findings: tuple[Finding, ...]
    #: Findings a baseline entry suppressed (kept out of gating and text
    #: rendering but counted, so reports show what the baseline hides).
    suppressed: int = 0

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            counts[severity_label(finding.graded)] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "fingerprint": self.fingerprint,
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TargetReport":
        return cls(
            target=str(payload["target"]),
            fingerprint=payload.get("fingerprint"),  # type: ignore[arg-type]
            findings=tuple(
                Finding.from_dict(f) for f in payload.get("findings", ())  # type: ignore[union-attr]
            ),
            suppressed=int(payload.get("suppressed", 0)),  # type: ignore[arg-type]
        )


class AnalysisReport:
    """The full output of one ``repro lint`` run."""

    def __init__(
        self,
        targets: Iterable[TargetReport],
        pairs_checked: int = 0,
    ) -> None:
        self.targets = list(targets)
        #: Number of valid 2-feature combinations the interaction pass
        #: examined (0 when the pass did not run).
        self.pairs_checked = pairs_checked

    # -- aggregation -------------------------------------------------------

    def all_findings(self) -> list[Finding]:
        return [f for target in self.targets for f in target.findings]

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for target in self.targets:
            for label, n in target.counts().items():
                counts[label] += n
        return counts

    def suppressed(self) -> int:
        return sum(target.suppressed for target in self.targets)

    def gate(self, fail_on: str = "error") -> bool:
        """True when no finding is at or above the ``fail_on`` grade."""
        counts = self.counts()
        if counts["error"]:
            return False
        return not (fail_on == "warning" and counts["warning"])

    def apply_baseline(self, baseline: "Baseline") -> "AnalysisReport":
        """A copy with baseline-matched findings moved into ``suppressed``."""
        filtered = []
        for target in self.targets:
            kept = tuple(
                f for f in target.findings if not baseline.matches(f)
            )
            filtered.append(
                replace(
                    target,
                    findings=kept,
                    suppressed=target.suppressed
                    + len(target.findings)
                    - len(kept),
                )
            )
        return AnalysisReport(filtered, pairs_checked=self.pairs_checked)

    # -- rendering ---------------------------------------------------------

    def to_dict(self) -> dict:
        return report_envelope(
            LINT_REPORT_KIND,
            LINT_REPORT_VERSION,
            {
                "counts": self.counts(),
                "suppressed": self.suppressed(),
                "pairs_checked": self.pairs_checked,
                "targets": [target.as_dict() for target in self.targets],
            },
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        payload = parse_report_envelope(
            text, LINT_REPORT_KIND, LINT_REPORT_VERSION
        )
        return cls(
            targets=[TargetReport.from_dict(t) for t in payload["targets"]],
            pairs_checked=int(payload.get("pairs_checked", 0)),
        )

    def render(self, max_findings: int = 50) -> str:
        lines = []
        shown = 0
        for target in self.targets:
            counts = target.counts()
            summary = ", ".join(
                f"{n} {label}{'s' if n != 1 and label != 'info' else ''}"
                for label, n in counts.items()
                if n
            )
            suppressed = (
                f" ({target.suppressed} baselined)" if target.suppressed else ""
            )
            lines.append(
                f"lint — {target.target}: {summary or 'clean'}{suppressed}"
            )
            for finding in target.findings:
                if shown >= max_findings:
                    break
                lines.append(f"  {finding.format()}")
                shown += 1
        remaining = len(self.all_findings()) - shown
        if remaining > 0:
            lines.append(f"  … +{remaining} more findings")
        totals = self.counts()
        overall = ", ".join(f"{n} {label}" for label, n in totals.items())
        tail = f"overall: {overall}"
        if self.pairs_checked:
            tail += f"; {self.pairs_checked} feature pairs checked"
        if self.suppressed():
            tail += f"; {self.suppressed()} baselined"
        lines.append(tail)
        return "\n".join(lines)
