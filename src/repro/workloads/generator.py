"""Seeded query-workload generators, one per dialect.

Benchmarks need dialect-appropriate query streams: every generated query
must be *accepted* by its dialect's parser (checked by the test suite), so
throughput numbers measure parsing, not error handling.  Generation is
deterministic per seed.
"""

from __future__ import annotations

import random
from typing import Callable

_TABLES = ["orders", "customers", "items", "events", "readings"]
_COLUMNS = ["id", "name", "qty", "price", "region", "ts", "status"]
_SENSOR_COLUMNS = ["nodeid", "light", "temp", "accel", "mag", "roomno"]
_REGIONS = ["'EU'", "'US'", "'APAC'"]


def generate_workload(
    dialect: str,
    count: int = 100,
    seed: int = 42,
    mode: str = "plain",
) -> list[str]:
    """Generate ``count`` random queries valid in the given dialect.

    ``mode="plain"`` (the default) draws from the hand-written templates
    below — realistic query shapes for throughput benchmarks.
    ``mode="coverage"`` composes the dialect and walks its parse program
    biased toward uncovered grammar regions (see
    :mod:`repro.workloads.guided`) — broader grammar reach at the price
    of composing the product.  Both modes are deterministic per seed.
    """
    if mode == "coverage":
        from ..sql import build_dialect
        from .guided import coverage_guided_workload

        return coverage_guided_workload(build_dialect(dialect), count, seed=seed)
    if mode != "plain":
        raise ValueError(
            f"unknown workload mode {mode!r} (choose 'plain' or 'coverage')"
        )
    try:
        generator = _GENERATORS[dialect.lower()]
    except KeyError:
        raise ValueError(f"no workload generator for dialect {dialect!r}") from None
    rng = random.Random(seed)
    return [generator(rng) for _ in range(count)]


def _pick(rng: random.Random, items):
    return items[rng.randrange(len(items))]


def _columns(rng: random.Random, pool, low=1, high=3) -> str:
    n = rng.randint(low, high)
    return ", ".join(rng.sample(pool, min(n, len(pool))))


def _value(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.5:
        return str(rng.randint(0, 1000))
    if roll < 0.8:
        return f"{rng.randint(0, 99)}.{rng.randint(0, 99):02d}"
    return _pick(rng, _REGIONS)


def _comparison(rng: random.Random, pool) -> str:
    op = _pick(rng, ["=", "<>", "<", ">", "<=", ">="])
    return f"{_pick(rng, pool)} {op} {_value(rng)}"


def _condition(rng: random.Random, pool, depth=0, connectives=("AND", "OR")) -> str:
    if depth < 2 and rng.random() < 0.4:
        connective = _pick(rng, list(connectives))
        return (
            f"{_condition(rng, pool, depth + 1, connectives)} {connective} "
            f"{_condition(rng, pool, depth + 1, connectives)}"
        )
    return _comparison(rng, pool)


def _scql(rng: random.Random) -> str:
    table = _pick(rng, _TABLES)
    roll = rng.random()
    if roll < 0.55:
        select_list = "*" if rng.random() < 0.3 else _columns(rng, _COLUMNS)
        where = (
            f" WHERE {_condition(rng, _COLUMNS, connectives=('AND',))}"
            if rng.random() < 0.7
            else ""
        )
        return f"SELECT {select_list} FROM {table}{where}"
    if roll < 0.7:
        values = ", ".join(_value(rng) for _ in range(rng.randint(1, 4)))
        return f"INSERT INTO {table} VALUES ({values})"
    if roll < 0.85:
        col = _pick(rng, _COLUMNS)
        return (
            f"UPDATE {table} SET {col} = {_value(rng)} "
            f"WHERE {_comparison(rng, _COLUMNS)}"
        )
    return f"DELETE FROM {table} WHERE {_comparison(rng, _COLUMNS)}"


def _tinysql(rng: random.Random) -> str:
    agg = _pick(rng, ["AVG", "MIN", "MAX", "SUM", "COUNT"])
    column = _pick(rng, _SENSOR_COLUMNS)
    roll = rng.random()
    if roll < 0.4:
        select_list = _columns(rng, _SENSOR_COLUMNS)
    elif roll < 0.8:
        select_list = f"{agg}({column})"
    else:
        select_list = f"{column}, {agg}({_pick(rng, _SENSOR_COLUMNS)})"
    query = f"SELECT {select_list} FROM sensors"
    if rng.random() < 0.6:
        query += f" WHERE {_condition(rng, _SENSOR_COLUMNS)}"
    if "(" in select_list and rng.random() < 0.4:
        query += f" GROUP BY {column}"
    if rng.random() < 0.7:
        query += f" SAMPLE PERIOD {rng.choice([512, 1024, 2048, 4096])}"
    if rng.random() < 0.3:
        query += f" EPOCH DURATION {rng.randint(1, 64)}"
    return query


def _core(rng: random.Random) -> str:
    table_a, table_b = rng.sample(_TABLES, 2)
    roll = rng.random()
    if roll < 0.35:
        return (
            f"SELECT a.{_pick(rng, _COLUMNS)}, b.{_pick(rng, _COLUMNS)} "
            f"FROM {table_a} a INNER JOIN {table_b} b ON a.id = b.id "
            f"WHERE {_condition(rng, ['a.qty', 'b.price'])}"
        )
    if roll < 0.55:
        agg = _pick(rng, ["COUNT(*)", "SUM(qty)", "AVG(price)", "MAX(id)"])
        return (
            f"SELECT region, {agg} FROM {table_a} "
            f"GROUP BY region HAVING {agg} > {rng.randint(0, 50)}"
        )
    if roll < 0.7:
        return (
            f"SELECT {_pick(rng, _COLUMNS)} FROM {table_a} WHERE id IN "
            f"(SELECT id FROM {table_b} WHERE {_comparison(rng, _COLUMNS)})"
        )
    if roll < 0.8:
        return (
            f"SELECT {_pick(rng, _COLUMNS)} FROM {table_a} "
            f"UNION ALL SELECT {_pick(rng, _COLUMNS)} FROM {table_b} "
        ).strip()
    if roll < 0.9:
        quantifier = _pick(rng, ["", "DISTINCT "])
        return (
            f"SELECT {quantifier}{_columns(rng, _COLUMNS)} FROM {table_a} "
            f"WHERE {_condition(rng, _COLUMNS)} "
            f"ORDER BY {_pick(rng, _COLUMNS)} DESC"
        )
    values = ", ".join(_value(rng) for _ in range(3))
    return f"INSERT INTO {table_a} (id, qty, price) VALUES ({values})"


def _analytics(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.3:
        grouping = _pick(rng, ["ROLLUP", "CUBE"])
        return (
            f"SELECT region, status, SUM(price) FROM orders "
            f"GROUP BY {grouping} (region, status)"
        )
    if roll < 0.6:
        fn = _pick(rng, ["RANK()", "ROW_NUMBER()", "SUM(price)"])
        return (
            f"SELECT {fn} OVER (PARTITION BY region ORDER BY price DESC) "
            f"FROM orders WHERE {_comparison(rng, _COLUMNS)}"
        )
    if roll < 0.8:
        return (
            "WITH recent AS (SELECT id, price FROM orders WHERE ts > 100) "
            f"SELECT COUNT(*), AVG(price) FROM recent "
            f"WHERE {_comparison(rng, ['id', 'price'])}"
        )
    return (
        "SELECT region, COUNT(DISTINCT id) FROM orders "
        "GROUP BY region ORDER BY region ASC NULLS LAST"
    )


def _full(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.6:
        return _core(rng)
    if roll < 0.7:
        return _analytics(rng)
    if roll < 0.78:
        return (
            f"CREATE TABLE t{rng.randint(0, 999)} "
            f"(id INTEGER PRIMARY KEY, v VARCHAR(20) NOT NULL, n NUMERIC (8, 2))"
        )
    if roll < 0.86:
        return (
            f"GRANT SELECT, UPDATE ON TABLE {_pick(rng, _TABLES)} TO PUBLIC"
        )
    if roll < 0.94:
        return (
            f"MERGE INTO {_pick(rng, _TABLES)} USING staged ON "
            f"{_pick(rng, _TABLES)}.id = staged.id "
            f"WHEN MATCHED THEN UPDATE SET qty = {rng.randint(0, 9)} "
            f"WHEN NOT MATCHED THEN INSERT (id) VALUES ({rng.randint(0, 9)})"
        )
    return "START TRANSACTION ISOLATION LEVEL SERIALIZABLE"


_GENERATORS: dict[str, Callable[[random.Random], str]] = {
    "scql": _scql,
    "tinysql": _tinysql,
    "core": _core,
    "analytics": _analytics,
    "full": _full,
}


def workload_dialects() -> list[str]:
    """Dialects that have a workload generator."""
    return list(_GENERATORS)
