"""Coverage-guided workload generation.

The plain per-dialect generators in :mod:`repro.workloads.generator` are
template-based: fast and benchmark-realistic, but they plateau well
short of full grammar coverage (they never emit a ``WITH`` clause the
template author didn't write).  :class:`CoverageGuidedGenerator` closes
that gap by walking the product's compiled
:class:`~repro.parsing.program.ParseProgram` *itself* — the same
instruction objects the :class:`~repro.parsing.coverage.CoverageMap`
numbered — and steering every decision toward what the collector has not
seen yet:

* at a CHOICE, prefer alternatives whose counter slot is still zero;
* at an OPT/LOOP/SEPLOOP, prefer whichever *taken*/*skipped* edge is
  still unexercised;
* otherwise fall back to seeded randomness, with a depth budget that
  degrades to minimal-cost expansion so recursion terminates.

Each emitted sentence is immediately parsed by an instrumented
interpreter sharing the generator's collector, so the bias reflects
*actual* coverage (what the parser really did), not what the generator
intended — and the emitted corpus is guaranteed accepted by the product.
Generation is deterministic per seed: coverage state evolves
deterministically from the same decisions it feeds.
"""

from __future__ import annotations

import random

from ..parsing.coverage import CoverageCollector, CoverageMap
from ..parsing.program import (
    OP_CALL,
    OP_CHOICE,
    OP_LOOP,
    OP_MATCH,
    OP_OPT,
    OP_SEPLOOP,
    OP_SEQ,
)
from ..parsing.sentences import build_terminal_table

_INF = 10**9


class CoverageGuidedGenerator:
    """Generate dialect sentences biased toward uncovered grammar regions.

    Args:
        product: A :class:`~repro.core.product_line.ComposedProduct`.
        program: Reuse an already-compiled parse program (must be the
            product's); compiled on demand otherwise.
        collector: Count into an existing collector (must be keyed to
            ``program``); a fresh one is created otherwise.
        seed: RNG seed; generation is deterministic per seed.
        max_depth: Expansion budget after which decisions collapse to
            minimal-cost choices so recursion terminates.
        max_tokens: Per-sentence size budget; once an emission reaches
            this many tokens every remaining decision also collapses to
            minimal cost, bounding sentence size (uncovered-alternative
            bias would otherwise compound into pathological sentences).
    """

    def __init__(
        self,
        product,
        program=None,
        collector: CoverageCollector | None = None,
        seed: int = 0,
        max_depth: int = 60,
        max_tokens: int = 200,
    ) -> None:
        self.product = product
        self.program = program if program is not None else product.program()
        if collector is None:
            collector = CoverageCollector(CoverageMap(self.program))
        self.collector = collector
        self.rng = random.Random(seed)
        self.max_depth = max_depth
        self.max_tokens = max_tokens
        self._out: list[str] = []
        self._terminals = build_terminal_table(product.grammar.tokens)
        self._rule_cost = self._compute_rule_costs()
        # per-sentence overlay of alternative picks: the shared collector
        # only advances after a sentence is parsed, so without this a
        # "least-exercised" tie would re-pick the same recursive
        # alternative at every depth of a single sentence and the
        # expansion would explode
        self._picked: dict[int, int] = {}
        self.parser = product.parser(hints=False, program=self.program)
        self.parser.enable_coverage(collector)

    # -- public ------------------------------------------------------------

    def sentence(self) -> str:
        """Emit one sentence and parse it into the collector."""
        start = self.program.start
        if start is None:
            raise ValueError(
                f"program {self.program.grammar_name!r} has no start rule"
            )
        out: list[str] = []
        self._out = out
        self._picked.clear()
        self._emit(self.program.code[start], out, depth=0)
        text = " ".join(out)
        # parsing both validates the sentence and advances the coverage
        # state the *next* sentence's bias reads
        self.parser.accepts(text)
        return text

    def generate(self, count: int) -> list[str]:
        """Exactly ``count`` sentences (fixed-size corpus mode)."""
        return [self.sentence() for _ in range(count)]

    def generate_until_dry(
        self,
        batch: int = 25,
        dry_batches: int = 2,
        max_sentences: int = 2000,
    ) -> list[str]:
        """Generate until coverage stops improving.

        Sentences are emitted in batches; when ``dry_batches``
        consecutive batches fail to raise the collector's monotone
        :meth:`~repro.parsing.coverage.CoverageCollector.score`, the
        remaining uncovered points are taken to be unreachable by this
        generator and the corpus is returned.  ``max_sentences`` is a
        hard stop against surprise non-convergence.
        """
        sentences: list[str] = []
        dry = 0
        while dry < dry_batches and len(sentences) < max_sentences:
            before = self.collector.score()
            room = min(batch, max_sentences - len(sentences))
            sentences.extend(self.sentence() for _ in range(room))
            dry = dry + 1 if self.collector.score() == before else 0
        return sentences

    # -- minimal-cost analysis (termination) -------------------------------

    def _compute_rule_costs(self) -> list[int]:
        """Fixpoint: minimum terminals derivable per program rule."""
        costs = [_INF] * len(self.program.code)
        changed = True
        while changed:
            changed = False
            for rule_id, body in enumerate(self.program.code):
                cost = self._instr_cost(body, costs)
                if cost < costs[rule_id]:
                    costs[rule_id] = cost
                    changed = True
        return costs

    def _instr_cost(self, instr, costs: list[int]) -> int:
        op = instr[0]
        if op == OP_MATCH:
            return 1
        if op == OP_CALL:
            return costs[instr[1]]
        if op == OP_SEQ:
            return sum(self._instr_cost(i, costs) for i in instr[1])
        if op == OP_CHOICE:
            return min(
                (self._instr_cost(b, costs) for b in instr[4]), default=_INF
            )
        if op == OP_OPT:
            return 0
        if op == OP_LOOP:
            if instr[3] == 0:
                return 0
            return instr[3] * self._instr_cost(instr[1], costs)
        # OP_SEPLOOP
        if instr[5] == 0:
            return 0
        item = self._instr_cost(instr[1], costs)
        sep = self._instr_cost(instr[2], costs)
        return instr[5] * item + (instr[5] - 1) * sep

    # -- emission ----------------------------------------------------------

    def _emit(self, instr, out: list[str], depth: int) -> None:
        op = instr[0]
        if op == OP_MATCH:
            samples = self._terminals.get(instr[1])
            if not samples:
                raise ValueError(f"no sample text for terminal {instr[1]!r}")
            out.append(self.rng.choice(samples))
            return
        if op == OP_CALL:
            self._emit(self.program.code[instr[1]], out, depth + 1)
            return
        if op == OP_SEQ:
            for item in instr[1]:
                self._emit(item, out, depth)
            return
        if op == OP_CHOICE:
            self._emit(self._pick_block(instr, depth), out, depth + 1)
            return
        if op == OP_OPT:
            if self._want_optional(instr, depth):
                self._emit(instr[1], out, depth + 1)
            return
        if op == OP_LOOP:
            for _ in range(self._repeat_count(instr, instr[3], depth)):
                self._emit(instr[1], out, depth + 1)
            return
        # OP_SEPLOOP
        count = self._repeat_count(instr, instr[5], depth)
        for index in range(count):
            if index:
                self._emit(instr[2], out, depth + 1)
            self._emit(instr[1], out, depth + 1)

    def _exhausted(self, depth: int) -> bool:
        """Has this sentence spent its depth or size budget?"""
        return depth > self.max_depth or len(self._out) >= self.max_tokens

    def _pick_block(self, instr, depth: int):
        blocks = instr[4]
        if len(blocks) == 1:
            return blocks[0]
        slot_of_block = self.collector.map.slot_of_block
        if self._exhausted(depth):
            costs = [self._instr_cost(b, self._rule_cost) for b in blocks]
            cheapest = min(costs)
            pool = [b for b, c in zip(blocks, costs, strict=True) if c == cheapest]
            return self.rng.choice(pool)
        alts = self.collector.alts
        picked = self._picked
        uncovered = [
            b
            for b in blocks
            if not alts[slot_of_block[id(b)]]
            and not picked.get(slot_of_block[id(b)])
        ]
        if uncovered:
            choice = self.rng.choice(uncovered)
            slot = slot_of_block[id(choice)]
            picked[slot] = picked.get(slot, 0) + 1
            return choice
        # every alternative already seen (or targeted earlier in this very
        # sentence): unbiased choice keeps sentences small and varied
        return self.rng.choice(blocks)

    def _decision(self, instr):
        index = self.collector.map.decision_of_instr[id(instr)]
        return (
            bool(self.collector.taken[index]),
            bool(self.collector.skipped[index]),
        )

    def _want_optional(self, instr, depth: int) -> bool:
        if self._exhausted(depth):
            return False
        taken, skipped = self._decision(instr)
        if not taken:
            return True
        if not skipped:
            return False
        return self.rng.random() < 0.4

    def _repeat_count(self, instr, minimum: int, depth: int) -> int:
        if self._exhausted(depth):
            return minimum
        taken, skipped = self._decision(instr)
        if instr[0] == OP_SEPLOOP:
            # taken = separator continuation ran (>= 2 items);
            # skipped = 0 or 1 items — only reachable when min allows it
            if not taken:
                return max(minimum, 2)
            if not skipped and minimum < 2:
                return minimum
        elif not taken:
            # taken = iterated beyond the floor
            return minimum + self.rng.randint(1, 2)
        elif not skipped:
            return minimum
        count = minimum
        while count < minimum + 3 and self.rng.random() < 0.35:
            count += 1
        return count


def coverage_guided_workload(
    product,
    count: int,
    seed: int = 0,
    program=None,
    collector: CoverageCollector | None = None,
) -> list[str]:
    """Fixed-size coverage-guided corpus for one composed product."""
    generator = CoverageGuidedGenerator(
        product, program=program, collector=collector, seed=seed
    )
    return generator.generate(count)
