"""Workload generators for benchmarks and examples.

Public API::

    from repro.workloads import generate_workload, workload_dialects
"""

from .generator import generate_workload, workload_dialects

__all__ = ["generate_workload", "workload_dialects"]
