"""Workload generators for benchmarks and examples.

Public API::

    from repro.workloads import (
        generate_workload, workload_dialects,
        CoverageGuidedGenerator, coverage_guided_workload,
    )
"""

from .generator import generate_workload, workload_dialects
from .guided import CoverageGuidedGenerator, coverage_guided_workload

__all__ = [
    "CoverageGuidedGenerator",
    "coverage_guided_workload",
    "generate_workload",
    "workload_dialects",
]
