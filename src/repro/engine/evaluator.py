"""Scalar expression evaluation with SQL three-valued logic.

``None`` is SQL NULL throughout.  Boolean expressions evaluate to
``True`` / ``False`` / ``None`` (UNKNOWN) under Kleene logic; a WHERE
clause keeps a row only when its condition is exactly ``True``.

Aggregates and window functions are *not* computed here — the executor
pre-computes them per group/row and binds the results in the
:class:`RowEnv`, keyed by the AST node itself (nodes are frozen
dataclasses, hence hashable).
"""

from __future__ import annotations

import datetime
import math
import re
from typing import Callable, Mapping

from ..errors import ExecutionError, TypeMismatchError
from ..sql import ast

# -- environment ------------------------------------------------------------


class RowEnv:
    """Column bindings for one row, chained to an outer environment.

    ``columns`` is a list of ``(qualifier, name)`` pairs aligned with the
    value tuple.  Lookups by bare name must be unambiguous; qualified
    lookups match the qualifier exactly.  Missing names fall through to
    the outer environment (correlated subqueries).
    """

    __slots__ = ("columns", "values", "outer", "aggregates", "windows", "overrides")

    def __init__(
        self,
        columns: list[tuple[str | None, str]],
        values: tuple,
        outer: "RowEnv | None" = None,
        aggregates: Mapping | None = None,
        windows: Mapping | None = None,
        overrides: Mapping | None = None,
    ) -> None:
        self.columns = columns
        self.values = values
        self.outer = outer
        self.aggregates = aggregates or {}
        self.windows = windows or {}
        #: expression-level substitutions (e.g. grouped keys nulled by a
        #: ROLLUP grouping set); checked before normal evaluation
        self.overrides = overrides or {}

    def lookup(self, qualifier: str | None, name: str):
        name_l = name.lower()
        qual_l = qualifier.lower() if qualifier is not None else None
        hits = [
            index
            for index, (col_qual, col_name) in enumerate(self.columns)
            if col_name.lower() == name_l
            and (qual_l is None or (col_qual or "").lower() == qual_l)
        ]
        if len(hits) == 1:
            return self.values[hits[0]]
        if len(hits) > 1:
            raise ExecutionError(f"ambiguous column reference {name!r}")
        if self.outer is not None:
            return self.outer.lookup(qualifier, name)
        target = f"{qualifier}.{name}" if qualifier else name
        raise ExecutionError(f"unknown column {target!r}")


# -- three-valued logic -------------------------------------------------------


def and3(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def or3(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def not3(a):
    if a is None:
        return None
    return not a


def compare(a, b) -> int | None:
    """SQL comparison: returns -1/0/1, or None when either side is NULL."""
    if a is None or b is None:
        return None
    if isinstance(a, bool) or isinstance(b, bool):
        if isinstance(a, bool) and isinstance(b, bool):
            return (a > b) - (a < b)
        raise TypeMismatchError(f"cannot compare {a!r} with {b!r}")
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    raise TypeMismatchError(f"cannot compare {a!r} with {b!r}")


_COMPARISON_OPS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    ">": lambda c: c > 0,
    "<=": lambda c: c <= 0,
    ">=": lambda c: c >= 0,
}


def like_match(value: str, pattern: str, escape: str | None = None) -> bool:
    """SQL LIKE: ``%`` any run, ``_`` one character, optional escape char."""
    parts: list[str] = []
    index = 0
    while index < len(pattern):
        ch = pattern[index]
        if escape and ch == escape and index + 1 < len(pattern):
            parts.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
        index += 1
    return re.fullmatch("".join(parts), value, flags=re.DOTALL) is not None


# -- evaluator --------------------------------------------------------------------


class Evaluator:
    """Evaluates expression ASTs against row environments.

    ``subquery_executor(query, env)`` is supplied by the executor and
    returns the list of result rows for a (possibly correlated) subquery.
    """

    def __init__(
        self,
        subquery_executor: Callable[[ast.Query, RowEnv | None], list[tuple]] | None = None,
        sequence_next: Callable[[str], int] | None = None,
    ) -> None:
        self._subquery = subquery_executor
        self._sequence_next = sequence_next

    # -- entry point ---------------------------------------------------------

    def eval(self, expr: ast.Expression, env: RowEnv):
        if env.overrides and expr in env.overrides:
            return env.overrides[expr]
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, env)

    def truth(self, expr: ast.Expression, env: RowEnv) -> bool:
        """WHERE/HAVING semantics: NULL counts as not-satisfied."""
        return self.eval(expr, env) is True

    # -- leaves ----------------------------------------------------------------

    def _eval_Literal(self, expr: ast.Literal, env: RowEnv):
        return expr.value

    def _eval_Default(self, expr: ast.Default, env: RowEnv):
        raise ExecutionError("DEFAULT is only allowed in INSERT/UPDATE sources")

    def _eval_ColumnRef(self, expr: ast.ColumnRef, env: RowEnv):
        return env.lookup(expr.qualifier, expr.name)

    # -- operators ----------------------------------------------------------------

    def _eval_BinaryOp(self, expr: ast.BinaryOp, env: RowEnv):
        op = expr.op
        if op == "AND":
            left = self.eval(expr.left, env)
            if left is False:
                return False
            return and3(left, self.eval(expr.right, env))
        if op == "OR":
            left = self.eval(expr.left, env)
            if left is True:
                return True
            return or3(left, self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in _COMPARISON_OPS:
            cmp_result = compare(left, right)
            if cmp_result is None:
                return None
            return _COMPARISON_OPS[op](cmp_result)
        if left is None or right is None:
            return None
        if op == "||":
            if not isinstance(left, str) or not isinstance(right, str):
                raise TypeMismatchError("|| needs string operands")
            return left + right
        if op in ("+", "-", "*", "/"):
            if isinstance(left, bool) or isinstance(right, bool):
                raise TypeMismatchError("arithmetic on boolean")
            if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
                raise TypeMismatchError(
                    f"arithmetic needs numbers, got {left!r} and {right!r}"
                )
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
        raise ExecutionError(f"unsupported operator {op!r}")

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: RowEnv):
        value = self.eval(expr.operand, env)
        if expr.op == "NOT":
            return not3(value)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeMismatchError(f"unary {expr.op} needs a number")
        return -value if expr.op == "-" else value

    # -- predicates ----------------------------------------------------------------

    def _eval_IsNull(self, expr: ast.IsNull, env: RowEnv):
        result = self.eval(expr.operand, env) is None
        return not result if expr.negated else result

    def _eval_Between(self, expr: ast.Between, env: RowEnv):
        value = self.eval(expr.operand, env)
        low = self.eval(expr.low, env)
        high = self.eval(expr.high, env)
        low_cmp = compare(value, low)
        high_cmp = compare(value, high)
        ge_low = None if low_cmp is None else low_cmp >= 0
        le_high = None if high_cmp is None else high_cmp <= 0
        result = and3(ge_low, le_high)
        return not3(result) if expr.negated else result

    def _eval_InList(self, expr: ast.InList, env: RowEnv):
        value = self.eval(expr.operand, env)
        result = self._in_values(value, [self.eval(i, env) for i in expr.items])
        return not3(result) if expr.negated else result

    @staticmethod
    def _in_values(value, candidates):
        saw_null = value is None
        for candidate in candidates:
            cmp_result = compare(value, candidate)
            if cmp_result is None:
                saw_null = True
            elif cmp_result == 0:
                return True
        return None if saw_null else False

    def _eval_Like(self, expr: ast.Like, env: RowEnv):
        value = self.eval(expr.operand, env)
        pattern = self.eval(expr.pattern, env)
        escape = self.eval(expr.escape, env) if expr.escape is not None else None
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise TypeMismatchError("LIKE needs string operands")
        result = like_match(value, pattern, escape)
        return not result if expr.negated else result

    def _eval_BooleanIs(self, expr: ast.BooleanIs, env: RowEnv):
        value = self.eval(expr.operand, env)
        result = value is None if expr.truth is None else value is expr.truth
        return not result if expr.negated else result

    def _eval_IsDistinctFrom(self, expr: ast.IsDistinctFrom, env: RowEnv):
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if left is None and right is None:
            distinct = False
        elif left is None or right is None:
            distinct = True
        else:
            distinct = compare(left, right) != 0
        return not distinct if expr.negated else distinct

    # -- subquery predicates -------------------------------------------------------

    def _rows(self, query: ast.Query, env: RowEnv) -> list[tuple]:
        if self._subquery is None:
            raise ExecutionError("subqueries are not available in this context")
        return self._subquery(query, env)

    def _eval_ScalarSubquery(self, expr: ast.ScalarSubquery, env: RowEnv):
        rows = self._rows(expr.query, env)
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return one value")
        return rows[0][0]

    def _eval_Exists(self, expr: ast.Exists, env: RowEnv):
        return bool(self._rows(expr.query, env))

    def _eval_UniqueSubquery(self, expr: ast.UniqueSubquery, env: RowEnv):
        rows = [r for r in self._rows(expr.query, env) if None not in r]
        return len(rows) == len(set(rows))

    def _eval_InSubquery(self, expr: ast.InSubquery, env: RowEnv):
        value = self.eval(expr.operand, env)
        rows = self._rows(expr.query, env)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("IN subquery must return one column")
        result = self._in_values(value, [r[0] for r in rows])
        return not3(result) if expr.negated else result

    def _eval_Quantified(self, expr: ast.Quantified, env: RowEnv):
        value = self.eval(expr.operand, env)
        rows = self._rows(expr.query, env)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("quantified subquery must return one column")
        op = _COMPARISON_OPS[expr.op]
        results = []
        for row in rows:
            cmp_result = compare(value, row[0])
            results.append(None if cmp_result is None else op(cmp_result))
        if expr.quantifier == "ALL":
            folded: bool | None = True
            for r in results:
                folded = and3(folded, r)
            return folded
        folded = False
        for r in results:
            folded = or3(folded, r)
        return folded

    # -- aggregates / windows (precomputed) ----------------------------------------

    def _eval_AggregateCall(self, expr: ast.AggregateCall, env: RowEnv):
        if expr in env.aggregates:
            return env.aggregates[expr]
        if env.outer is not None:
            return self._eval_AggregateCall(expr, env.outer)
        raise ExecutionError(
            f"aggregate {expr.function} used outside an aggregated query"
        )

    def _eval_WindowCall(self, expr: ast.WindowCall, env: RowEnv):
        if expr in env.windows:
            return env.windows[expr]
        raise ExecutionError("window function used where no window is computed")

    # -- other expression forms -----------------------------------------------------

    def _eval_CaseExpr(self, expr: ast.CaseExpr, env: RowEnv):
        if expr.operand is not None:
            operand = self.eval(expr.operand, env)
            for when, result in expr.whens:
                cmp_result = compare(operand, self.eval(when, env))
                if cmp_result == 0:
                    return self.eval(result, env)
        else:
            for when, result in expr.whens:
                if self.eval(when, env) is True:
                    return self.eval(result, env)
        if expr.else_result is not None:
            return self.eval(expr.else_result, env)
        return None

    _CAST_TARGETS = {
        "integer": int,
        "numeric": float,
        "real": float,
        "char": str,
        "varchar": str,
        "boolean": bool,
    }

    def _eval_Cast(self, expr: ast.Cast, env: RowEnv):
        value = self.eval(expr.operand, env)
        if value is None:
            return None
        target = expr.type_name
        try:
            if target == "integer":
                if isinstance(value, str):
                    return int(value.strip())
                if isinstance(value, bool):
                    raise TypeMismatchError("cannot cast boolean to integer")
                return int(value)
            if target in ("numeric", "real"):
                if isinstance(value, bool):
                    raise TypeMismatchError("cannot cast boolean to numeric")
                return float(value)
            if target in ("char", "varchar", "clob"):
                if isinstance(value, bool):
                    return "TRUE" if value else "FALSE"
                return str(value)
            if target == "boolean":
                if isinstance(value, bool):
                    return value
                if isinstance(value, str):
                    folded = value.strip().upper()
                    if folded == "TRUE":
                        return True
                    if folded == "FALSE":
                        return False
                raise TypeMismatchError(f"cannot cast {value!r} to boolean")
            if target in ("date", "time", "timestamp", "interval"):
                return str(value)
        except ValueError:
            raise ExecutionError(f"cannot cast {value!r} to {target}") from None
        raise ExecutionError(f"unsupported cast target {target!r}")

    def _eval_FunctionCall(self, expr: ast.FunctionCall, env: RowEnv):
        name = expr.name.upper()
        if name == "NEXT VALUE FOR":
            if self._sequence_next is None:
                raise ExecutionError("sequences are not available in this context")
            return self._sequence_next(expr.args[0].name)
        handler = _SCALAR_FUNCTIONS.get(name)
        if handler is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self.eval(a, env) for a in expr.args]
        return handler(args)


# -- scalar function implementations ------------------------------------------------


def _null_if_any_null(fn):
    def wrapper(args):
        if any(a is None for a in args):
            return None
        return fn(args)

    return wrapper


def _num(args, index=0):
    value = args[index]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"expected a number, got {value!r}")
    return value


def _text(args, index=0):
    value = args[index]
    if not isinstance(value, str):
        raise TypeMismatchError(f"expected a string, got {value!r}")
    return value


def _substring(args):
    s = _text(args)
    start = int(_num(args, 1))
    begin = max(start - 1, 0)
    if len(args) > 2:
        length = int(_num(args, 2))
        return s[begin : begin + max(length, 0)]
    return s[begin:]


def _trim(args):
    if len(args) == 1:
        return _text(args).strip()
    chars = _text(args, 0)
    return _text(args, 1).strip(chars or None)


def _extract(args):
    field = _text(args, 0)
    value = _text(args, 1)
    date_part, _, time_part = value.partition(" ")
    pieces = date_part.split("-")
    time_pieces = time_part.split(":") if time_part else []
    mapping = {
        "YEAR": pieces[0] if pieces else None,
        "MONTH": pieces[1] if len(pieces) > 1 else None,
        "DAY": pieces[2] if len(pieces) > 2 else None,
        "HOUR": time_pieces[0] if time_pieces else None,
        "MINUTE": time_pieces[1] if len(time_pieces) > 1 else None,
        "SECOND": time_pieces[2] if len(time_pieces) > 2 else None,
    }
    raw = mapping.get(field)
    if raw is None:
        raise ExecutionError(f"cannot EXTRACT {field} from {value!r}")
    return float(raw) if field == "SECOND" else int(raw)


def _coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _nullif(args):
    if args[0] is not None and args[1] is not None and compare(args[0], args[1]) == 0:
        return None
    return args[0]


def _position(args):
    needle = _text(args, 0)
    haystack = _text(args, 1)
    return haystack.find(needle) + 1


_SCALAR_FUNCTIONS: dict[str, Callable[[list], object]] = {
    "ABS": _null_if_any_null(lambda a: abs(_num(a))),
    "MOD": _null_if_any_null(lambda a: _num(a) % _num(a, 1)),
    "LN": _null_if_any_null(lambda a: math.log(_num(a))),
    "EXP": _null_if_any_null(lambda a: math.exp(_num(a))),
    "POWER": _null_if_any_null(lambda a: _num(a) ** _num(a, 1)),
    "SQRT": _null_if_any_null(lambda a: math.sqrt(_num(a))),
    "FLOOR": _null_if_any_null(lambda a: math.floor(_num(a))),
    "CEILING": _null_if_any_null(lambda a: math.ceil(_num(a))),
    "UPPER": _null_if_any_null(lambda a: _text(a).upper()),
    "LOWER": _null_if_any_null(lambda a: _text(a).lower()),
    "CHAR_LENGTH": _null_if_any_null(lambda a: len(_text(a))),
    "OCTET_LENGTH": _null_if_any_null(lambda a: len(_text(a).encode())),
    "SUBSTRING": _null_if_any_null(_substring),
    "TRIM": _null_if_any_null(_trim),
    "POSITION": _null_if_any_null(_position),
    "EXTRACT": _null_if_any_null(_extract),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "CURRENT_DATE": lambda a: datetime.date.today().isoformat(),
    "CURRENT_TIME": lambda a: datetime.datetime.now().time().isoformat("seconds"),
    "CURRENT_TIMESTAMP": lambda a: datetime.datetime.now().isoformat(" ", "seconds"),
    "LOCALTIME": lambda a: datetime.datetime.now().time().isoformat("seconds"),
    "LOCALTIMESTAMP": lambda a: datetime.datetime.now().isoformat(" ", "seconds"),
}
