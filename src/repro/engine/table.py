"""Schemas, columns and in-memory tables.

Values are plain Python objects (``int``, ``float``, ``str``, ``bool``,
``None`` for SQL NULL; dates/times are ISO strings, which order
correctly).  Rows are tuples aligned with the table's column list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..errors import ExecutionError, TypeMismatchError

#: Python types acceptable for each engine type name.
_PYTHON_TYPES: dict[str, tuple[type, ...]] = {
    "integer": (int,),
    "numeric": (int, float),
    "real": (int, float),
    "char": (str,),
    "varchar": (str,),
    "clob": (str,),
    "blob": (bytes, str),
    "boolean": (bool,),
    "date": (str,),
    "time": (str,),
    "timestamp": (str,),
    "interval": (str,),
    "unknown": (object,),
}


def check_value(type_name: str, value: object) -> object:
    """Validate/coerce one value against an engine type; NULL always passes."""
    if value is None:
        return None
    expected = _PYTHON_TYPES.get(type_name, (object,))
    if type_name == "boolean" and not isinstance(value, bool):
        raise TypeMismatchError(f"expected boolean, got {value!r}")
    if isinstance(value, bool) and type_name in ("integer", "numeric", "real"):
        raise TypeMismatchError(f"expected {type_name}, got boolean {value!r}")
    if not isinstance(value, expected):
        if type_name in ("numeric", "real") and isinstance(value, int):
            return float(value)
        raise TypeMismatchError(
            f"expected {type_name}, got {type(value).__name__} {value!r}"
        )
    if type_name in ("numeric", "real") and isinstance(value, int):
        return float(value)
    return value


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type_name: str = "unknown"
    not_null: bool = False
    default: object = None
    has_default: bool = False
    primary_key: bool = False
    unique: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint on a table."""

    columns: tuple[str, ...]
    referenced_table: str
    referenced_columns: tuple[str, ...]
    on_delete: str | None = None  # "cascade", "set null", "restrict", ...


class Table:
    """An in-memory table with rows and constraint metadata."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        foreign_keys: Iterable[ForeignKey] = (),
        checks: Iterable = (),
    ) -> None:
        self.name = name
        self.columns: list[Column] = list(columns)
        if not self.columns:
            raise ExecutionError(f"table {name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ExecutionError(f"duplicate column names in table {name!r}")
        self.foreign_keys: list[ForeignKey] = list(foreign_keys)
        #: CHECK constraint expressions (AST nodes), enforced by the executor.
        self.checks: list = list(checks)
        self.rows: list[tuple] = []

    # -- schema ------------------------------------------------------------

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise ExecutionError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def key_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.primary_key]

    # -- data -------------------------------------------------------------------

    def check_row(self, row: tuple, skip_index: int | None = None) -> tuple:
        """Validate types, NOT NULL and uniqueness for a candidate row.

        ``skip_index`` excludes one existing row from uniqueness checks
        (the row being updated).
        """
        if len(row) != len(self.columns):
            raise ExecutionError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        checked = []
        for column, value in zip(self.columns, row, strict=True):
            if value is None and column.not_null:
                raise ExecutionError(
                    f"column {column.name!r} of {self.name!r} is NOT NULL"
                )
            checked.append(check_value(column.type_name, value))
        result = tuple(checked)
        for index, column in enumerate(self.columns):
            if not (column.primary_key or column.unique):
                continue
            value = result[index]
            if value is None:
                if column.primary_key:
                    raise ExecutionError(
                        f"primary key column {column.name!r} cannot be NULL"
                    )
                continue
            for row_index, existing in enumerate(self.rows):
                if row_index == skip_index:
                    continue
                if existing[index] == value:
                    raise ExecutionError(
                        f"duplicate value {value!r} for unique column "
                        f"{column.name!r} of {self.name!r}"
                    )
        return result

    def insert(self, row: tuple) -> None:
        self.rows.append(self.check_row(row))

    def copy(self) -> "Table":
        """Deep-enough copy for transaction snapshots (rows are immutable)."""
        clone = Table(self.name, self.columns, self.foreign_keys, self.checks)
        clone.rows = list(self.rows)
        return clone

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"<Table {self.name!r}: {len(self.columns)} columns, {len(self.rows)} rows>"


def make_unique_marker(column: Column, primary: bool) -> Column:
    """Return the column marked as primary-key/unique (table-level constraints)."""
    if primary:
        return replace(column, primary_key=True, not_null=True)
    return replace(column, unique=True)
