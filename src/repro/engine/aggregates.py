"""Aggregate computation and expression introspection helpers."""

from __future__ import annotations

import dataclasses
from typing import Iterator

from ..errors import ExecutionError, TypeMismatchError
from ..sql import ast
from .evaluator import Evaluator, RowEnv, compare


def walk_expression(expr) -> Iterator[ast.Expression]:
    """Yield ``expr`` and all scalar sub-expressions.

    Does *not* descend into subqueries (:class:`ast.Query` values) — the
    executor evaluates those separately with their own scopes.
    """
    if not isinstance(expr, ast.Expression):
        return
    yield expr
    if not dataclasses.is_dataclass(expr):
        return
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, ast.Expression):
            yield from walk_expression(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.Expression):
                    yield from walk_expression(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        yield from walk_expression(sub)


def find_aggregates(expressions) -> list[ast.AggregateCall]:
    """Distinct aggregate calls appearing in the given expressions.

    Aggregates nested inside window calls are excluded — they are computed
    per window partition, not per group.
    """
    inside_windows: set[int] = set()
    for expr in expressions:
        for node in walk_expression(expr):
            if isinstance(node, ast.WindowCall):
                for sub in walk_expression(node.function):
                    inside_windows.add(id(sub))
    found: list[ast.AggregateCall] = []
    for expr in expressions:
        for node in walk_expression(expr):
            if isinstance(node, ast.AggregateCall) and id(node) not in inside_windows:
                if node not in found:
                    found.append(node)
    return found


def find_windows(expressions) -> list[ast.WindowCall]:
    """Distinct window calls appearing in the given expressions."""
    found: list[ast.WindowCall] = []
    for expr in expressions:
        for node in walk_expression(expr):
            if isinstance(node, ast.WindowCall) and node not in found:
                found.append(node)
    return found


def compute_aggregate(
    call: ast.AggregateCall,
    group_envs: list[RowEnv],
    evaluator: Evaluator,
):
    """Evaluate one aggregate call over the rows of one group."""
    envs = group_envs
    if call.filter_condition is not None:
        envs = [e for e in envs if evaluator.truth(call.filter_condition, e)]
    if call.argument is None:  # COUNT(*)
        return len(envs)

    values = [evaluator.eval(call.argument, e) for e in envs]
    values = [v for v in values if v is not None]
    if call.quantifier == "DISTINCT":
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen

    function = call.function
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return _numeric_fold(values, sum)
    if function == "AVG":
        return _numeric_fold(values, lambda v: sum(v) / len(v))
    if function == "MIN":
        return _extreme(values, smallest=True)
    if function == "MAX":
        return _extreme(values, smallest=False)
    if function in ("EVERY", "ANY", "SOME"):
        if not all(isinstance(v, bool) for v in values):
            raise TypeMismatchError(f"{function} needs boolean values")
        return all(values) if function == "EVERY" else any(values)
    raise ExecutionError(f"unknown aggregate function {function!r}")


def _numeric_fold(values, fold):
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"numeric aggregate over {value!r}")
    return fold(values)


def _extreme(values, smallest: bool):
    best = values[0]
    for value in values[1:]:
        cmp_result = compare(value, best)
        if cmp_result is None:
            continue
        if (smallest and cmp_result < 0) or (not smallest and cmp_result > 0):
            best = value
    return best
