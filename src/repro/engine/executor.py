"""Statement and query execution over the catalog.

A deliberately plan-less engine: queries are evaluated directly from the
AST with nested-loop joins and materialized subqueries.  It exists to
demonstrate the paper's point — a *tailored* SQL engine whose language
surface equals the selected grammar features — not to win benchmarks.

Known simplifications (documented in DESIGN.md): GROUPING SETS is treated
as a list of single-column grouping sets, window frames are ignored
(whole-partition aggregation), and ORDER BY may reference select aliases
or underlying columns but not arbitrary non-projected expressions in set
operations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import CatalogError, ExecutionError
from ..sql import ast
from .aggregates import (
    compute_aggregate,
    find_aggregates,
    find_windows,
    walk_expression,
)
from .catalog import Catalog, Sequence, View
from .evaluator import Evaluator, RowEnv, compare
from .table import Column, ForeignKey, Table, make_unique_marker

ColumnId = tuple  # (qualifier | None, name)


@dataclass
class Result:
    """A query result: column names plus rows in order."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self):
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError("result is not a single scalar")
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Simple aligned-text rendering for examples and demos."""
        widths = [len(c) for c in self.columns]
        rendered = [
            ["NULL" if v is None else str(v) for v in row] for row in self.rows
        ]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths, strict=True)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=False)))
        lines.append(f"({len(self.rows)} row{'s' if len(self.rows) != 1 else ''})")
        return "\n".join(lines)


@dataclass
class _Relation:
    """An intermediate relation: qualified columns plus rows."""

    columns: list[ColumnId]
    rows: list[tuple]


class Executor:
    """Executes statements against one catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.evaluator = Evaluator(
            subquery_executor=self._execute_subquery,
            sequence_next=self._sequence_next,
        )
        self._cte_scopes: list[dict[str, Result]] = []

    # ==== statements =========================================================

    def execute(self, statement: ast.Statement):
        """Execute one statement.

        Returns a :class:`Result` for queries, an affected-row count for
        DML, and ``None`` for DDL and generic statements.
        """
        if isinstance(statement, ast.QueryStatement):
            return self.execute_query(statement.query)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Merge):
            return self._execute_merge(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateView):
            self.catalog.create_view(
                View(statement.name[-1], statement.columns, statement.query)
            )
            return None
        if isinstance(statement, ast.DropStatement):
            return self._execute_drop(statement)
        if isinstance(statement, ast.GenericStatement):
            if statement.kind == "sequence_definition":
                return self._execute_create_sequence(statement)
            return None  # parsed, no engine semantics (GRANT, SET ...)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    # ==== queries =================================================================

    def execute_query(self, query: ast.Query, outer: RowEnv | None = None) -> Result:
        scope: dict[str, Result] = {}
        self._cte_scopes.append(scope)
        try:
            for cte in query.ctes:
                scope[cte.name.lower()] = self._materialize_cte(cte, query.recursive, outer)
            result, row_envs = self._execute_body(query.body, outer)
            if query.order_by:
                result, row_envs = self._order_result(
                    result, row_envs, query.order_by, outer
                )
            rows = result.rows
            if query.offset:
                rows = rows[query.offset :]
            if query.limit is not None:
                rows = rows[: query.limit]
            return Result(result.columns, rows)
        finally:
            self._cte_scopes.pop()

    def _execute_subquery(self, query: ast.Query, outer: RowEnv | None) -> list[tuple]:
        return self.execute_query(query, outer=outer).rows

    def _materialize_cte(
        self, cte: ast.CommonTableExpr, recursive: bool, outer: RowEnv | None
    ) -> Result:
        name = cte.name.lower()
        if not recursive:
            result = self.execute_query(cte.query, outer=outer)
        else:
            # fixpoint iteration: the CTE's own name resolves to the rows
            # accumulated so far
            scope = self._cte_scopes[-1]
            accumulated = Result(list(cte.columns) or [], [])
            scope[name] = accumulated
            for _ in range(10_000):
                result = self.execute_query(cte.query, outer=outer)
                new_rows = [r for r in result.rows if r not in accumulated.rows]
                if accumulated.columns == []:
                    accumulated.columns = result.columns
                if not new_rows:
                    break
                accumulated.rows.extend(new_rows)
                scope[name] = accumulated
            else:
                raise ExecutionError(f"recursive CTE {cte.name!r} did not converge")
            result = accumulated
        if cte.columns:
            if len(cte.columns) != len(result.columns):
                raise ExecutionError(
                    f"CTE {cte.name!r} declares {len(cte.columns)} columns, "
                    f"query returns {len(result.columns)}"
                )
            result = Result(list(cte.columns), result.rows)
        return result

    def _execute_body(
        self, body: ast.QueryBody, outer: RowEnv | None
    ) -> tuple[Result, list[RowEnv | None]]:
        if isinstance(body, ast.Select):
            return self._execute_select(body, outer)
        if isinstance(body, ast.SetOperation):
            return self._execute_set_operation(body, outer)
        if isinstance(body, ast.Values):
            env = RowEnv([], (), outer=outer)
            rows = [
                tuple(self.evaluator.eval(e, env) for e in row) for row in body.rows
            ]
            columns = [f"column{i + 1}" for i in range(len(rows[0]) if rows else 0)]
            return Result(columns, rows), [None] * len(rows)
        if isinstance(body, ast.ExplicitTable):
            relation = self._named_relation(body.parts[-1], None)
            return (
                Result([name for __, name in relation.columns], relation.rows),
                [None] * len(relation.rows),
            )
        raise ExecutionError(f"cannot execute query body {type(body).__name__}")

    def _execute_set_operation(
        self, op: ast.SetOperation, outer: RowEnv | None
    ) -> tuple[Result, list[None]]:
        left, __ = self._execute_body(op.left, outer)
        right, __ = self._execute_body(op.right, outer)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                f"{op.kind.upper()} operands have different column counts"
            )
        keep_duplicates = op.quantifier == "ALL"
        if op.kind == "union":
            rows = list(left.rows) + list(right.rows)
            if not keep_duplicates:
                rows = _dedupe(rows)
        elif op.kind == "intersect":
            right_pool = list(right.rows)
            rows = []
            for row in left.rows:
                if row in right_pool:
                    rows.append(row)
                    if keep_duplicates:
                        right_pool.remove(row)
            if not keep_duplicates:
                rows = _dedupe(rows)
        elif op.kind == "except":
            right_pool = list(right.rows)
            rows = []
            for row in left.rows:
                if row in right_pool:
                    if keep_duplicates:
                        right_pool.remove(row)
                    continue
                rows.append(row)
            if not keep_duplicates:
                rows = _dedupe(rows)
        else:
            raise ExecutionError(f"unknown set operation {op.kind!r}")
        return Result(left.columns, rows), [None] * len(rows)

    # ==== SELECT ====================================================================

    def _execute_select(
        self, select: ast.Select, outer: RowEnv | None
    ) -> tuple[Result, list[RowEnv | None]]:
        relation = self._resolve_from(select.from_tables, outer)
        envs = [
            RowEnv(relation.columns, row, outer=outer) for row in relation.rows
        ]
        if select.where is not None:
            envs = [e for e in envs if self.evaluator.truth(select.where, e)]

        item_exprs = [
            i.expression for i in select.items if isinstance(i, ast.SelectItem)
        ]
        probe = list(item_exprs)
        if select.having is not None:
            probe.append(select.having)
        aggregates = find_aggregates(probe)
        windows = find_windows(item_exprs)

        if select.group_by or aggregates:
            envs = self._group(select, envs, aggregates, outer)
        if select.having is not None:
            envs = [e for e in envs if self.evaluator.truth(select.having, e)]
        if windows:
            self._bind_windows(select, envs, windows)

        columns, rows = self._project(select, relation, envs)
        row_envs: list[RowEnv | None] = list(envs)
        if select.quantifier == "DISTINCT":
            rows, row_envs = _dedupe_with(rows, row_envs)
        return Result(columns, rows), row_envs

    def _group(
        self,
        select: ast.Select,
        envs: list[RowEnv],
        aggregates: list[ast.AggregateCall],
        outer: RowEnv | None,
    ) -> list[RowEnv]:
        keys = list(select.group_by)
        grouping_sets = self._grouping_sets(select, keys)
        grouped: list[RowEnv] = []
        for active in grouping_sets:
            buckets: dict[tuple, list[RowEnv]] = {}
            order: list[tuple] = []
            for env in envs:
                key = tuple(
                    _hashable(self.evaluator.eval(k, env)) for k in active
                )
                if key not in buckets:
                    buckets[key] = []
                    order.append(key)
                buckets[key].append(env)
            if not keys and not buckets:
                # aggregate over an empty relation still yields one group
                buckets[()] = []
                order.append(())
            for key in order:
                group = buckets[key]
                agg_values = {
                    call: compute_aggregate(call, group, self.evaluator)
                    for call in aggregates
                }
                overrides = {
                    k: None for k in keys if k not in active
                }
                representative = group[0] if group else RowEnv([], (), outer=outer)
                grouped.append(
                    RowEnv(
                        representative.columns,
                        representative.values,
                        outer=outer,
                        aggregates=agg_values,
                        overrides=overrides,
                    )
                )
        return grouped

    @staticmethod
    def _grouping_sets(select: ast.Select, keys: list) -> list[list]:
        if select.grouping_kind == "rollup":
            return [keys[:n] for n in range(len(keys), -1, -1)]
        if select.grouping_kind == "cube":
            sets: list[list] = []
            for mask in range(2 ** len(keys) - 1, -1, -1):
                sets.append([k for i, k in enumerate(keys) if mask & (1 << i)])
            return sets
        if select.grouping_kind == "grouping sets":
            return [[k] for k in keys] or [[]]
        return [keys]

    def _bind_windows(
        self,
        select: ast.Select,
        envs: list[RowEnv],
        windows: list[ast.WindowCall],
    ) -> None:
        named = {d.name.lower(): d.spec for d in select.windows}
        for call in windows:
            spec = call.window
            if isinstance(spec, str):
                try:
                    spec = named[spec.lower()]
                except KeyError:
                    raise ExecutionError(f"unknown window {call.window!r}") from None
            self._compute_window(call, spec, envs)

    def _compute_window(
        self, call: ast.WindowCall, spec: ast.WindowSpec, envs: list[RowEnv]
    ) -> None:
        partitions: dict[tuple, list[RowEnv]] = {}
        for env in envs:
            key = tuple(
                _hashable(self.evaluator.eval(p, env)) for p in spec.partition_by
            )
            partitions.setdefault(key, []).append(env)
        for partition in partitions.values():
            ordered = partition
            if spec.order_by:
                ordered = sorted(
                    partition,
                    key=lambda e: _sort_key(
                        [self.evaluator.eval(s.expression, e) for s in spec.order_by],
                        spec.order_by,
                    ),
                )
            function = call.function
            if isinstance(function, ast.AggregateCall):
                value = compute_aggregate(function, partition, self.evaluator)
                for env in partition:
                    env.windows = {**env.windows, call: value}
                continue
            name = function.name.upper()
            rank = 0
            last_key = object()
            dense = 0
            for position, env in enumerate(ordered, start=1):
                key = tuple(
                    _hashable(self.evaluator.eval(s.expression, env))
                    for s in spec.order_by
                )
                if key != last_key:
                    rank = position
                    dense += 1
                    last_key = key
                if name == "ROW_NUMBER":
                    value = position
                elif name == "RANK":
                    value = rank
                elif name == "DENSE_RANK":
                    value = dense
                else:
                    raise ExecutionError(f"unknown window function {name!r}")
                env.windows = {**env.windows, call: value}

    def _project(
        self, select: ast.Select, relation: _Relation, envs: list[RowEnv]
    ) -> tuple[list[str], list[tuple]]:
        columns: list[str] = []
        extractors: list = []
        for item in select.items:
            if isinstance(item, ast.Star):
                for index, (qualifier, name) in enumerate(relation.columns):
                    if item.table is not None and (
                        qualifier is None
                        or qualifier.lower() != item.table.lower()
                    ):
                        continue
                    columns.append(name)
                    extractors.append(("col", index))
            else:
                columns.append(item.alias or _derive_name(item.expression, len(columns)))
                extractors.append(("expr", item.expression))
        rows = []
        for env in envs:
            row = []
            for kind, payload in extractors:
                if kind == "col":
                    value = env.values[payload] if payload < len(env.values) else None
                    if env.overrides:
                        value = self._grouped_column_value(env, payload, value)
                    row.append(value)
                else:
                    row.append(self.evaluator.eval(payload, env))
            rows.append(tuple(row))
        return columns, rows

    def _grouped_column_value(self, env: RowEnv, index: int, value):
        """Apply grouping-set overrides to starred columns."""
        qualifier, name = env.columns[index]
        for expr, override in env.overrides.items():
            if isinstance(expr, ast.ColumnRef) and expr.name.lower() == name.lower():
                return override
        return value

    def _order_result(
        self,
        result: Result,
        row_envs: list[RowEnv | None],
        order_by: tuple[ast.SortSpec, ...],
        outer: RowEnv | None,
    ) -> tuple[Result, list[RowEnv | None]]:
        result_columns: list[ColumnId] = [(None, c) for c in result.columns]

        def key_for(index: int):
            env = RowEnv(
                result_columns,
                result.rows[index],
                outer=row_envs[index] if row_envs[index] is not None else outer,
            )
            values = [self.evaluator.eval(s.expression, env) for s in order_by]
            return _sort_key(values, order_by)

        order = sorted(range(len(result.rows)), key=key_for)
        return (
            Result(result.columns, [result.rows[i] for i in order]),
            [row_envs[i] for i in order],
        )

    # ==== FROM resolution ===========================================================

    def _resolve_from(
        self, tables: tuple[ast.TableRef, ...], outer: RowEnv | None
    ) -> _Relation:
        if not tables:
            return _Relation([], [()])
        relation = self._table_ref(tables[0], outer)
        for table_ref in tables[1:]:
            other = self._table_ref(table_ref, outer)
            relation = _cross(relation, other)
        return relation

    def _table_ref(self, ref: ast.TableRef, outer: RowEnv | None) -> _Relation:
        if isinstance(ref, ast.NamedTable):
            return self._named_relation(ref.name, ref.alias)
        if isinstance(ref, ast.DerivedTable):
            result = self.execute_query(ref.query, outer=outer)
            columns = [(ref.alias, c) for c in result.columns]
            return _Relation(columns, result.rows)
        if isinstance(ref, ast.Join):
            return self._join(ref, outer)
        raise ExecutionError(f"unknown table reference {type(ref).__name__}")

    def _named_relation(self, name: str, alias: str | None) -> _Relation:
        qualifier = alias or name
        for scope in reversed(self._cte_scopes):
            if name.lower() in scope:
                result = scope[name.lower()]
                return _Relation(
                    [(qualifier, c) for c in result.columns], list(result.rows)
                )
        if self.catalog.has_view(name):
            view = self.catalog.view(name)
            result = self.execute_query(view.query)
            columns = list(view.columns) or result.columns
            return _Relation([(qualifier, c) for c in columns], result.rows)
        table = self.catalog.table(name)
        return _Relation(
            [(qualifier, c) for c in table.column_names()], list(table.rows)
        )

    def _join(self, join: ast.Join, outer: RowEnv | None) -> _Relation:
        left = self._table_ref(join.left, outer)
        right = self._table_ref(join.right, outer)
        if join.kind == "cross":
            return _cross(left, right)
        if join.kind == "union":
            columns = left.columns + right.columns
            rows = [r + (None,) * len(right.columns) for r in left.rows]
            rows += [(None,) * len(left.columns) + r for r in right.rows]
            return _Relation(columns, rows)

        if join.kind == "natural" or join.using:
            common = (
                list(join.using)
                if join.using
                else [
                    n
                    for __, n in left.columns
                    if any(n.lower() == rn.lower() for __, rn in right.columns)
                ]
            )
            predicate = self._columns_equal_predicate(left, right, common)
        elif join.on is not None:
            predicate = self._on_predicate(left, right, join.on, outer)
        else:
            raise ExecutionError("join needs an ON or USING specification")

        columns = left.columns + right.columns
        rows: list[tuple] = []
        matched_right: set[int] = set()
        for left_row in left.rows:
            matched = False
            for right_index, right_row in enumerate(right.rows):
                if predicate(left_row, right_row):
                    rows.append(left_row + right_row)
                    matched = True
                    matched_right.add(right_index)
            if not matched and join.kind in ("left", "full"):
                rows.append(left_row + (None,) * len(right.columns))
        if join.kind in ("right", "full"):
            for right_index, right_row in enumerate(right.rows):
                if right_index not in matched_right:
                    rows.append((None,) * len(left.columns) + right_row)
        return _Relation(columns, rows)

    def _columns_equal_predicate(self, left, right, names):
        pairs = []
        for name in names:
            left_index = _find_column(left.columns, name)
            right_index = _find_column(right.columns, name)
            pairs.append((left_index, right_index))

        def predicate(left_row, right_row):
            for li, ri in pairs:
                if compare(left_row[li], right_row[ri]) != 0:
                    return False
            return True

        return predicate

    def _on_predicate(self, left, right, condition, outer):
        columns = left.columns + right.columns

        def predicate(left_row, right_row):
            env = RowEnv(columns, left_row + right_row, outer=outer)
            return self.evaluator.truth(condition, env)

        return predicate

    # ==== DML ====================================================================

    def _execute_insert(self, statement: ast.Insert) -> int:
        table = self.catalog.table(statement.table[-1])
        target_columns = list(statement.columns) or table.column_names()
        if statement.source is None:  # DEFAULT VALUES
            source_rows = [tuple(ast.Default() for __ in target_columns)]
            return self._insert_rows(table, target_columns, source_rows, evaluate=True)
        if isinstance(statement.source, ast.Values):
            return self._insert_rows(
                table, target_columns, list(statement.source.rows), evaluate=True
            )
        result = self.execute_query(statement.source)
        return self._insert_rows(table, target_columns, result.rows, evaluate=False)

    def _insert_rows(self, table, target_columns, source_rows, evaluate: bool) -> int:
        env = RowEnv([], ())
        count = 0
        for source_row in source_rows:
            if len(source_row) != len(target_columns):
                raise ExecutionError(
                    f"INSERT expects {len(target_columns)} values, "
                    f"got {len(source_row)}"
                )
            provided = {}
            for name, value in zip(target_columns, source_row, strict=True):
                column = table.column(name)
                if evaluate:
                    if isinstance(value, ast.Default):
                        provided[column.name] = self._default_for(column)
                    else:
                        provided[column.name] = self.evaluator.eval(value, env)
                else:
                    provided[column.name] = value
            row = tuple(
                provided.get(c.name, self._default_for(c)) for c in table.columns
            )
            self._check_constraints(table, row)
            table.insert(row)
            count += 1
        return count

    @staticmethod
    def _default_for(column: Column):
        return column.default if column.has_default else None

    def _check_constraints(self, table: Table, row: tuple, skip_index=None) -> None:
        env = RowEnv([(table.name, c) for c in table.column_names()], row)
        for check in table.checks:
            if self.evaluator.eval(check, env) is False:
                raise ExecutionError(
                    f"CHECK constraint violated on table {table.name!r}"
                )
        for fk in table.foreign_keys:
            values = tuple(row[table.column_index(c)] for c in fk.columns)
            if any(v is None for v in values):
                continue
            referenced = self.catalog.table(fk.referenced_table)
            ref_columns = list(fk.referenced_columns) or referenced.key_columns
            indices = [referenced.column_index(c) for c in ref_columns]
            if not any(
                tuple(r[i] for i in indices) == values for r in referenced.rows
            ):
                raise ExecutionError(
                    f"foreign key violation: {values!r} not present in "
                    f"{fk.referenced_table!r}"
                )

    def _execute_update(self, statement: ast.Update) -> int:
        table = self.catalog.table(statement.table[-1])
        columns = [(table.name, c) for c in table.column_names()]
        count = 0
        for index, row in enumerate(list(table.rows)):
            env = RowEnv(columns, row)
            if statement.where is not None and not self.evaluator.truth(
                statement.where, env
            ):
                continue
            updated = list(row)
            for name, source in statement.assignments:
                column_index = table.column_index(name)
                if isinstance(source, ast.Default):
                    updated[column_index] = self._default_for(table.columns[column_index])
                else:
                    updated[column_index] = self.evaluator.eval(source, env)
            checked = table.check_row(tuple(updated), skip_index=index)
            self._check_constraints(table, checked, skip_index=index)
            table.rows[index] = checked
            count += 1
        return count

    def _execute_delete(self, statement: ast.Delete) -> int:
        table = self.catalog.table(statement.table[-1])
        columns = [(table.name, c) for c in table.column_names()]
        keep: list[tuple] = []
        removed: list[tuple] = []
        for row in table.rows:
            env = RowEnv(columns, row)
            if statement.where is None or self.evaluator.truth(statement.where, env):
                removed.append(row)
            else:
                keep.append(row)
        for row in removed:
            self._apply_referential_actions(table, row)
        table.rows = keep
        return len(removed)

    def _apply_referential_actions(self, table: Table, row: tuple) -> None:
        for other in self.catalog.tables():
            for fk in other.foreign_keys:
                if fk.referenced_table.lower() != table.name.lower():
                    continue
                ref_columns = list(fk.referenced_columns) or table.key_columns
                key = tuple(row[table.column_index(c)] for c in ref_columns)
                fk_indices = [other.column_index(c) for c in fk.columns]
                dependents = [
                    r
                    for r in other.rows
                    if tuple(r[i] for i in fk_indices) == key
                ]
                if not dependents:
                    continue
                action = (fk.on_delete or "restrict").lower()
                if action == "cascade":
                    other.rows = [r for r in other.rows if r not in dependents]
                elif action == "set null":
                    other.rows = [
                        (
                            tuple(
                                None if i in fk_indices else v
                                for i, v in enumerate(r)
                            )
                            if r in dependents
                            else r
                        )
                        for r in other.rows
                    ]
                else:
                    raise ExecutionError(
                        f"cannot delete from {table.name!r}: referenced by "
                        f"{other.name!r}"
                    )

    def _execute_merge(self, statement: ast.Merge) -> int:
        target = self.catalog.table(statement.target[-1])
        target_qualifier = statement.target_alias or target.name
        target_columns = [(target_qualifier, c) for c in target.column_names()]
        source = self._table_ref(statement.source, None)
        count = 0
        for source_row in source.rows:
            matched_index = None
            for index, target_row in enumerate(target.rows):
                env = RowEnv(
                    target_columns + source.columns, target_row + source_row
                )
                if self.evaluator.truth(statement.condition, env):
                    matched_index = index
                    break
            if matched_index is not None and statement.matched_assignments:
                env = RowEnv(
                    target_columns + source.columns,
                    target.rows[matched_index] + source_row,
                )
                updated = list(target.rows[matched_index])
                for name, expr in statement.matched_assignments:
                    updated[target.column_index(name)] = self.evaluator.eval(expr, env)
                target.rows[matched_index] = table_checked = target.check_row(
                    tuple(updated), skip_index=matched_index
                )
                self._check_constraints(target, table_checked, skip_index=matched_index)
                count += 1
            elif matched_index is None and statement.not_matched_values is not None:
                env = RowEnv(source.columns, source_row)
                insert_columns = (
                    list(statement.not_matched_columns) or target.column_names()
                )
                values_row = statement.not_matched_values.rows[0]
                provided = {
                    name: self.evaluator.eval(expr, env)
                    for name, expr in zip(insert_columns, values_row, strict=False)
                }
                row = tuple(
                    provided.get(c.name, self._default_for(c)) for c in target.columns
                )
                self._check_constraints(target, row)
                target.insert(row)
                count += 1
        return count

    # ==== DDL =======================================================================

    def _execute_create_table(self, statement: ast.CreateTable) -> None:
        columns: list[Column] = []
        env = RowEnv([], ())
        for col in statement.columns:
            default = None
            has_default = False
            if col.default is not None:
                default = self.evaluator.eval(col.default, env)
                has_default = True
            columns.append(
                Column(
                    name=col.name,
                    type_name=col.type.name,
                    not_null=col.not_null or col.primary_key,
                    default=default,
                    has_default=has_default,
                    primary_key=col.primary_key,
                    unique=col.unique,
                )
            )
        foreign_keys: list[ForeignKey] = []
        checks = [c.check for c in statement.columns if c.check is not None]
        for col in statement.columns:
            if col.references is not None:
                foreign_keys.append(
                    ForeignKey(
                        columns=(col.name,),
                        referenced_table=col.references[-1],
                        referenced_columns=(),
                    )
                )
        for constraint in statement.constraints:
            if constraint.kind in ("primary key", "unique"):
                primary = constraint.kind == "primary key"
                for name in constraint.columns:
                    index = next(
                        i for i, c in enumerate(columns) if c.name == name
                    )
                    columns[index] = make_unique_marker(columns[index], primary)
            elif constraint.kind == "foreign key":
                foreign_keys.append(
                    ForeignKey(
                        columns=constraint.columns,
                        referenced_table=constraint.references_table[-1],
                        referenced_columns=constraint.references_columns,
                        on_delete=constraint.on_delete,
                    )
                )
            elif constraint.kind == "check":
                checks.append(constraint.check)
        self.catalog.create_table(
            Table(statement.name[-1], columns, foreign_keys, checks)
        )
        return None

    def _execute_create_sequence(self, statement: ast.GenericStatement) -> None:
        # GenericStatement text: "CREATE SEQUENCE name [options]"
        words = statement.text.split()
        name = words[2]
        increment = 1
        start = 1
        upper = [w.upper() for w in words]
        if "START" in upper:
            start = int(words[upper.index("START") + 2])
        if "INCREMENT" in upper:
            increment = int(words[upper.index("INCREMENT") + 2])
        self.catalog.create_sequence(Sequence(name, start, increment))
        return None

    def _sequence_next(self, name: str) -> int:
        sequence = self.catalog.sequence(name)
        value = sequence.next_value
        sequence.next_value += sequence.increment
        return value

    def _execute_drop(self, statement: ast.DropStatement) -> None:
        name = statement.name[-1]
        if statement.kind == "table":
            self.catalog.drop_table(name)
        elif statement.kind == "view":
            self.catalog.drop_view(name)
        elif statement.kind == "sequence":
            self.catalog.drop_sequence(name)
        else:
            raise CatalogError(f"cannot drop object of kind {statement.kind!r}")
        return None


# ==== helpers =======================================================================


def _cross(left: _Relation, right: _Relation) -> _Relation:
    return _Relation(
        left.columns + right.columns,
        [a + b for a, b in itertools.product(left.rows, right.rows)],
    )


def _find_column(columns: list[ColumnId], name: str) -> int:
    hits = [
        index
        for index, (__, col_name) in enumerate(columns)
        if col_name.lower() == name.lower()
    ]
    if len(hits) != 1:
        raise ExecutionError(f"column {name!r} is missing or ambiguous in join")
    return hits[0]


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen = set()
    result = []
    for row in rows:
        key = tuple(_hashable(v) for v in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _dedupe_with(rows: list[tuple], companions: list) -> tuple[list[tuple], list]:
    seen = set()
    out_rows, out_companions = [], []
    for row, companion in zip(rows, companions, strict=False):
        key = tuple(_hashable(v) for v in row)
        if key not in seen:
            seen.add(key)
            out_rows.append(row)
            out_companions.append(companion)
    return out_rows, out_companions


def _hashable(value):
    return ("\0null",) if value is None else value


def _sort_key(values: list, specs) -> tuple:
    key = []
    for value, spec in zip(values, specs, strict=False):
        descending = getattr(spec, "descending", False)
        nulls_last = getattr(spec, "nulls_last", None)
        if nulls_last is None:
            nulls_last = not descending  # SQL default: NULLs sort high
        null_rank = 1 if nulls_last else -1
        if value is None:
            key.append((null_rank, 0, ""))
            continue
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            sort_value = (-value if descending else value)
            key.append((0, 0, sort_value))
        else:
            text = str(value)
            if descending:
                text = tuple(-ord(c) for c in text)
            key.append((0, 1, text))
    return tuple(key)


def _derive_name(expression: ast.Expression, index: int) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.AggregateCall):
        return expression.function.lower()
    if isinstance(expression, ast.FunctionCall):
        return expression.name.lower()
    return f"expr{index + 1}"
