"""The catalog: named tables, views and sequences.

Names are case-insensitive (folded to lower case), matching SQL's regular
identifier semantics.  Views are stored as their defining query and
expanded on reference by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError
from ..sql import ast
from .table import Table


@dataclass
class View:
    name: str
    columns: tuple[str, ...]
    query: ast.Query


@dataclass
class Sequence:
    name: str
    next_value: int = 1
    increment: int = 1


def _fold(name: str) -> str:
    return name.lower()


class Catalog:
    """Named database objects with snapshot/restore for transactions."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, View] = {}
        self._sequences: dict[str, Sequence] = {}

    # -- tables ----------------------------------------------------------------

    def create_table(self, table: Table) -> None:
        key = _fold(table.name)
        if key in self._tables or key in self._views:
            raise CatalogError(f"object {table.name!r} already exists")
        self._tables[key] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[_fold(name)]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return _fold(name) in self._tables

    def drop_table(self, name: str) -> None:
        if _fold(name) not in self._tables:
            raise CatalogError(f"no such table: {name!r}")
        del self._tables[_fold(name)]

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # -- views --------------------------------------------------------------------

    def create_view(self, view: View) -> None:
        key = _fold(view.name)
        if key in self._tables or key in self._views:
            raise CatalogError(f"object {view.name!r} already exists")
        self._views[key] = view

    def view(self, name: str) -> View:
        try:
            return self._views[_fold(name)]
        except KeyError:
            raise CatalogError(f"no such view: {name!r}") from None

    def has_view(self, name: str) -> bool:
        return _fold(name) in self._views

    def drop_view(self, name: str) -> None:
        if _fold(name) not in self._views:
            raise CatalogError(f"no such view: {name!r}")
        del self._views[_fold(name)]

    # -- sequences ----------------------------------------------------------------

    def create_sequence(self, sequence: Sequence) -> None:
        key = _fold(sequence.name)
        if key in self._sequences:
            raise CatalogError(f"sequence {sequence.name!r} already exists")
        self._sequences[key] = sequence

    def sequence(self, name: str) -> Sequence:
        try:
            return self._sequences[_fold(name)]
        except KeyError:
            raise CatalogError(f"no such sequence: {name!r}") from None

    def drop_sequence(self, name: str) -> None:
        if _fold(name) not in self._sequences:
            raise CatalogError(f"no such sequence: {name!r}")
        del self._sequences[_fold(name)]

    # -- transactions ----------------------------------------------------------------

    def snapshot(self) -> "Catalog":
        """Copy the catalog; table rows are copied, definitions shared."""
        clone = Catalog()
        clone._tables = {k: t.copy() for k, t in self._tables.items()}
        clone._views = dict(self._views)
        clone._sequences = {
            k: Sequence(s.name, s.next_value, s.increment)
            for k, s in self._sequences.items()
        }
        return clone

    def restore(self, snapshot: "Catalog") -> None:
        self._tables = snapshot._tables
        self._views = snapshot._views
        self._sequences = snapshot._sequences
