"""The Database facade: a tailored SQL engine for one dialect.

This is the paper's end product — "only the needed functionality ... is
present in the SQL engine".  A :class:`Database` owns a parser composed
from a feature selection (or preset dialect), the AST builder, a catalog,
and an executor, plus simple snapshot-based transactions::

    from repro.engine import Database

    db = Database("core")
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20))")
    db.execute("INSERT INTO t VALUES (1, 'ada')")
    print(db.query("SELECT name FROM t WHERE id = 1").rows)
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from ..errors import ExecutionError, ParseError
from ..sql import ast, build_ast, build_dialect, configure_sql
from ..sql.product_line import ComposedProduct
from .catalog import Catalog
from .executor import Executor, Result


@lru_cache(maxsize=None)
def _preset_product(name: str) -> ComposedProduct:
    return build_dialect(name)


class Database:
    """An in-memory database whose SQL surface is a composed dialect.

    Args:
        dialect: Preset dialect name ("scql", "tinysql", "core",
            "analytics", "full") — ignored when ``features`` is given.
        features: Explicit feature selection to compose instead of a
            preset.
    """

    def __init__(
        self,
        dialect: str = "core",
        features: Iterable[str] | None = None,
    ) -> None:
        if features is not None:
            self.product = configure_sql(features)
            self.dialect = "custom"
        else:
            self.product = _preset_product(dialect)
            self.dialect = dialect
        self.parser = self.product.parser()
        self.catalog = Catalog()
        self.executor = Executor(self.catalog)
        self._committed = self.catalog.snapshot()
        self._savepoints: dict[str, Catalog] = {}

    # -- statement execution ----------------------------------------------------

    def execute(self, sql: str):
        """Parse and execute a script; returns the last statement's result.

        Queries return a :class:`Result`, DML returns the affected row
        count, DDL and transaction statements return ``None``.

        Raises:
            ParseError: when the dialect does not accept the text.
            EngineError: for catalog/type/constraint failures.
        """
        script = build_ast(self.parser.parse(sql))
        outcome = None
        for statement in script:
            outcome = self._execute_statement(statement)
        return outcome

    def query(self, sql: str) -> Result:
        """Execute a single query and return its result table."""
        outcome = self.execute(sql)
        if not isinstance(outcome, Result):
            raise ExecutionError("statement did not produce a result set")
        return outcome

    def accepts(self, sql: str) -> bool:
        """Does this dialect's grammar accept the text? (No execution.)"""
        return self.parser.accepts(sql)

    def diagnose(self, sql: str, max_errors: int | None = 25):
        """Resilient parse-only check: partial tree plus every diagnostic.

        Never raises on malformed input; syntax errors carry feature-aware
        hints ("enable feature 'Window'") when the offending construct
        belongs to a feature outside this dialect.
        """
        return self.parser.parse_with_diagnostics(sql, max_errors=max_errors)

    # -- transactions ----------------------------------------------------------------

    def _execute_statement(self, statement: ast.Statement):
        if isinstance(statement, ast.Commit):
            self.commit()
            return None
        if isinstance(statement, ast.Rollback):
            self.rollback(statement.savepoint)
            return None
        if isinstance(statement, ast.Savepoint):
            self._savepoints[statement.name.lower()] = self.catalog.snapshot()
            return None
        if isinstance(statement, ast.ReleaseSavepoint):
            self._savepoints.pop(statement.name.lower(), None)
            return None
        return self.executor.execute(statement)

    def commit(self) -> None:
        """Make the current state the rollback target."""
        self._committed = self.catalog.snapshot()
        self._savepoints.clear()

    def rollback(self, savepoint: str | None = None) -> None:
        """Restore the last committed state (or a savepoint)."""
        if savepoint is not None:
            try:
                snapshot = self._savepoints[savepoint.lower()]
            except KeyError:
                raise ExecutionError(f"no such savepoint: {savepoint!r}") from None
            self.catalog.restore(snapshot.snapshot())
            return
        self.catalog.restore(self._committed.snapshot())
        self._savepoints.clear()

    # -- introspection ----------------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(t.name for t in self.catalog.tables())

    def __repr__(self) -> str:
        return f"<Database dialect={self.dialect!r}, {len(self.catalog.tables())} tables>"
