"""Relational engine substrate: a tailor-made in-memory SQL engine.

Public API::

    from repro.engine import Database, Result, Catalog, Table, Column
"""

from .catalog import Catalog, Sequence, View
from .database import Database
from .evaluator import Evaluator, RowEnv
from .executor import Executor, Result
from .table import Column, ForeignKey, Table

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "Evaluator",
    "Executor",
    "ForeignKey",
    "Result",
    "RowEnv",
    "Sequence",
    "Table",
    "View",
]
