"""Command-line configurator for the SQL parser product line.

The paper's "current work" is "an implementation model and a user
interface presenting various SQL statements and their features.  When a
user selects different features, the required parser is created by
composing these features."  This CLI is that interface, terminal-flavoured::

    python -m repro.cli diagrams                 # list the feature diagrams
    python -m repro.cli show QuerySpecification  # render a diagram (Figure 1)
    python -m repro.cli dialects                 # compare preset dialects
    python -m repro.cli features tinysql         # features behind a preset
    python -m repro.cli compose Where GroupBy -q "SELECT a FROM t WHERE b = 1"
    python -m repro.cli compose --dialect core --emit core_parser.py
    python -m repro.cli shell core               # interactive SQL shell
    python -m repro.cli sample tinysql -n 5      # random sentences
"""

from __future__ import annotations

import argparse
import sys

from .diagnostics import render_diagnostic, render_diagnostics
from .engine import Database
from .errors import InvalidConfigurationError, ReproError
from .features import render_feature
from .parsing import SentenceGenerator
from .sql import (
    build_dialect,
    build_sql_product_line,
    configure_sql,
    dialect_features,
    dialect_names,
    sql_registry,
)

_WORKED_EXAMPLE_BASE = ["QuerySpecification", "SelectSublist"]


def _cmd_diagrams(args: argparse.Namespace) -> int:
    print(sql_registry().report())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    model = build_sql_product_line().model
    if not model.has_feature(args.feature):
        print(f"no such feature: {args.feature!r}", file=sys.stderr)
        return 1
    print(render_feature(model.feature(args.feature)))
    return 0


def _cmd_dialects(args: argparse.Namespace) -> int:
    header = (
        f"{'dialect':10} {'features':>8} {'rules':>6} {'tokens':>7} "
        f"{'keywords':>9} {'LL entries':>10}"
    )
    print(header)
    print("-" * len(header))
    for name in dialect_names():
        product = build_dialect(name)
        size = product.size()
        table = product.parser().table.metrics()
        print(
            f"{name:10} {len(product.configuration):>8} {size['rules']:>6} "
            f"{size['tokens']:>7} {len(product.grammar.tokens.keywords):>9} "
            f"{table['entries']:>10}"
        )
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    for feature in dialect_features(args.dialect):
        print(feature)
    return 0


def _resolve_product(args: argparse.Namespace):
    if getattr(args, "dialect", None):
        return build_dialect(args.dialect)
    features = list(getattr(args, "features", []) or [])
    if not features:
        raise ReproError("select features or pass --dialect")
    # convenience: bare clause features imply the worked-example base
    selection = set(features)
    if not selection & {"QuerySpecification", "Insert", "CreateTable"}:
        selection.update(_WORKED_EXAMPLE_BASE)
    return configure_sql(selection)


def _cmd_compose(args: argparse.Namespace) -> int:
    product = _resolve_product(args)
    print(f"composed {product.name}: {product.size()}")
    print(f"sequence: {' -> '.join(product.sequence)}")
    print(f"trace: {product.trace.summary()}")
    if args.emit:
        source = product.generate_source()
        with open(args.emit, "w") as handle:
            handle.write(source)
        print(f"wrote generated parser: {args.emit} "
              f"({len(source.splitlines())} lines)")
    if args.query:
        parser = product.parser()
        outcome = parser.parse_with_diagnostics(
            args.query, max_errors=args.max_errors
        )
        if outcome.ok:
            print("accepted:")
            print(outcome.tree.pretty())
        else:
            print("rejected:")
            print(outcome.render(filename="<query>"))
            return 1
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    product = build_dialect(args.dialect)
    generator = SentenceGenerator(product.grammar, seed=args.seed)
    for sentence in generator.sentences(args.count):
        print(sentence)
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    db = Database(args.dialect)
    print(f"repro SQL shell — dialect {args.dialect!r} "
          f"({db.product.size()['rules']} grammar rules). "
          "Type SQL, or .quit to exit.")
    while True:
        try:
            line = input("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (".quit", ".exit"):
            return 0
        if line == ".tables":
            print(", ".join(db.table_names()) or "(no tables)")
            continue
        # resilient pre-flight: report *every* syntax problem with carets
        # and feature hints instead of dying on the first one
        report = db.diagnose(line, max_errors=args.max_errors)
        if not report.ok:
            print(report.render(filename="<shell>"))
            continue
        try:
            outcome = db.execute(line)
        except ReproError as error:
            print(render_diagnostic(error.to_diagnostic(), source=line,
                                    filename="<shell>"))
            continue
        except Exception as error:  # a bug must not kill the session
            print(f"internal error: {type(error).__name__}: {error}")
            continue
        if outcome is None:
            print("ok")
        elif isinstance(outcome, int):
            print(f"{outcome} row(s) affected")
        else:
            print(outcome.to_text())


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Configure and explore tailor-made SQL parsers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("diagrams", help="list the feature diagrams").set_defaults(
        fn=_cmd_diagrams
    )

    show = sub.add_parser("show", help="render a feature diagram")
    show.add_argument("feature")
    show.set_defaults(fn=_cmd_show)

    sub.add_parser("dialects", help="compare preset dialects").set_defaults(
        fn=_cmd_dialects
    )

    features = sub.add_parser("features", help="features behind a preset")
    features.add_argument("dialect", choices=dialect_names())
    features.set_defaults(fn=_cmd_features)

    compose = sub.add_parser("compose", help="compose features into a parser")
    compose.add_argument("features", nargs="*", help="feature names to select")
    compose.add_argument("--dialect", choices=dialect_names())
    compose.add_argument("--emit", metavar="FILE",
                         help="write generated parser source")
    compose.add_argument("-q", "--query", help="try parsing this query")
    compose.add_argument("--max-errors", type=int, default=25, metavar="N",
                         help="stop reporting after N syntax errors")
    compose.set_defaults(fn=_cmd_compose)

    sample = sub.add_parser("sample", help="random sentences of a dialect")
    sample.add_argument("dialect", choices=dialect_names())
    sample.add_argument("-n", "--count", type=int, default=10)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(fn=_cmd_sample)

    shell = sub.add_parser("shell", help="interactive SQL shell")
    shell.add_argument("dialect", choices=dialect_names(), nargs="?",
                       default="core")
    shell.add_argument("--max-errors", type=int, default=25, metavar="N",
                       help="stop reporting after N syntax errors")
    shell.set_defaults(fn=_cmd_shell)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return args.fn(args)
    except InvalidConfigurationError as error:
        # one diagnostic per violation, each with a suggested fix
        print(render_diagnostics(error.diagnostics(), filename="<config>"),
              file=sys.stderr)
        return 1
    except ReproError as error:
        print(render_diagnostic(error.to_diagnostic()), file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
