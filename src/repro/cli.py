"""Command-line configurator for the SQL parser product line.

The paper's "current work" is "an implementation model and a user
interface presenting various SQL statements and their features.  When a
user selects different features, the required parser is created by
composing these features."  This CLI is that interface, terminal-flavoured::

    python -m repro.cli diagrams                 # list the feature diagrams
    python -m repro.cli show QuerySpecification  # render a diagram (Figure 1)
    python -m repro.cli dialects                 # compare preset dialects
    python -m repro.cli features tinysql         # features behind a preset
    python -m repro.cli compose Where GroupBy -q "SELECT a FROM t WHERE b = 1"
    python -m repro.cli compose --dialect core --emit core_parser.py
    python -m repro.cli shell core               # interactive SQL shell
    python -m repro.cli sample tinysql -n 5      # random sentences
    python -m repro.cli ir --dialect tinysql     # compiled parse-program IR
    python -m repro.cli stats --warm core        # parse-service cache metrics
    python -m repro.cli conformance --json       # corpus, both backends
    python -m repro.cli coverage --fail-under 90 # grammar-coverage gate
    python -m repro.cli lint --baseline lint-baseline.txt  # static analysis
    python -m repro.cli translate --from full --to core "SELECT a FROM t"

Products are resolved through the process-wide fingerprint-keyed
registry (:mod:`repro.service`): repeated commands against the same
selection reuse the composed parser, and ``--cache DIR`` persists
generated parser source across processes.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .diagnostics import render_diagnostic, render_diagnostics
from .engine import Database
from .errors import InvalidConfigurationError, ReproError
from .features import render_feature
from .parsing import SentenceGenerator, backend_names
from .service import ParseService
from .sql import (
    build_dialect,
    build_sql_product_line,
    dialect_features,
    dialect_names,
    sql_registry,
)

_WORKED_EXAMPLE_BASE = ["QuerySpecification", "SelectSublist"]


def _cmd_diagrams(args: argparse.Namespace) -> int:
    print(sql_registry().report())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    model = build_sql_product_line().model
    if not model.has_feature(args.feature):
        print(f"no such feature: {args.feature!r}", file=sys.stderr)
        return 1
    print(render_feature(model.feature(args.feature)))
    return 0


def _cmd_dialects(args: argparse.Namespace) -> int:
    header = (
        f"{'dialect':10} {'features':>8} {'rules':>6} {'tokens':>7} "
        f"{'keywords':>9} {'LL entries':>10}"
    )
    print(header)
    print("-" * len(header))
    for name in dialect_names():
        product = build_dialect(name)
        size = product.size()
        table = product.parser().table.metrics()
        print(
            f"{name:10} {len(product.configuration):>8} {size['rules']:>6} "
            f"{size['tokens']:>7} {len(product.grammar.tokens.keywords):>9} "
            f"{table['entries']:>10}"
        )
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    for feature in dialect_features(args.dialect):
        print(feature)
    return 0


def _service(args: argparse.Namespace) -> ParseService:
    """The command's parse service over the shared SQL registry.

    Commands use it as a context manager so both executor kinds are
    drained on the way out (the ISSUE-10 close path).
    """
    kwargs: dict = {"cache_dir": getattr(args, "cache", None)}
    if getattr(args, "executor", None):
        kwargs["executor"] = args.executor
    if getattr(args, "workers", None):
        kwargs["max_workers"] = args.workers
    return ParseService(**kwargs)


def _selection(args: argparse.Namespace) -> tuple[list[str], str | None]:
    """The feature selection a command names, plus a display name."""
    if getattr(args, "dialect", None):
        return dialect_features(args.dialect), f"sql-{args.dialect.lower()}"
    features = list(getattr(args, "features", []) or [])
    if not features:
        raise ReproError("select features or pass --dialect")
    # convenience: bare clause features imply the worked-example base
    selection = set(features)
    if not selection & {"QuerySpecification", "Insert", "CreateTable"}:
        selection.update(_WORKED_EXAMPLE_BASE)
    return sorted(selection), None


def _resolve_product(args: argparse.Namespace, service: ParseService | None = None):
    """Resolve a command's product through the fingerprint-keyed registry.

    Repeated invocations against the same selection (and every other
    path that composes it — dialing up a shell, ``configure_sql`` …)
    share one composed product per fingerprint.
    """
    features, name = _selection(args)
    if service is None:
        with _service(args) as service:
            product = service.registry.get(features).product
    else:
        product = service.registry.get(features).product
    if name is not None and product.name != name:
        product = dataclasses.replace(product, name=name)
    return product


def _cmd_compose(args: argparse.Namespace) -> int:
    with _service(args) as service:
        features, name = _selection(args)
        entry = service.registry.get(features)
        product = entry.product
        if name is not None and product.name != name:
            product = dataclasses.replace(product, name=name)
        print(f"composed {product.name}: {product.size()}")
        print(f"fingerprint: {entry.fingerprint.digest}")
        print(f"sequence: {' -> '.join(product.sequence)}")
        print(f"trace: {product.trace.summary()}")
        if args.emit:
            # disk-cache aware: with --cache, an unchanged fingerprint
            # reuses the generated source from a previous process
            source = service.registry.generated_source(entry)
            with open(args.emit, "w") as handle:
                handle.write(source)
            print(f"wrote generated parser: {args.emit} "
                  f"({len(source.splitlines())} lines)")
        status = 0
        if args.query:
            result = service.parse(
                args.query, features, max_errors=args.max_errors
            )
            if result.ok:
                print("accepted:")
                print(result.tree.pretty())
            else:
                print("rejected:")
                print(result.render(filename="<query>"))
                status = 1
        if args.cache:
            print(service.render_stats())
        return status


def _cmd_ir(args: argparse.Namespace) -> int:
    """Dump a product's compiled parse program as a readable listing."""
    with _service(args) as service:
        features, name = _selection(args)
        entry = service.registry.get(features)
        program = service.registry.parse_program(entry)
        if args.artifacts:
            print(f"fingerprint: {entry.fingerprint.digest}")
            if service.registry.cache_dir is None:
                print("artifact cache: disabled (pass --cache DIR)")
            for item in service.registry.artifact_inventory(entry):
                if item["path"] is None:
                    print(f"  {item['kind']:8} (no cache directory)")
                    continue
                if not item["exists"]:
                    state = "missing"
                elif item["stale"]:
                    state = "stale"
                else:
                    state = "fresh"
                if item["quarantined"]:
                    state += ", quarantined copy present"
                size = f"{item['size']:>8} B" if item["exists"] else " " * 10
                print(f"  {item['kind']:8} {size}  {state}  {item['path']}")
            return 0
        if args.rule:
            rule_id = program.rule_id(args.rule)
            if rule_id is None:
                print(f"no such rule: {args.rule!r}", file=sys.stderr)
                return 1
            # print the program header plus just the requested rule's block
            lines = program.listing().splitlines()
            keep: list[str] = []
            collecting = False
            for line in lines:
                if line.startswith("rule #"):
                    collecting = line.startswith(f"rule #{rule_id} ")
                if collecting and line.strip():
                    keep.append(line)
            print("\n".join(lines[:5]))
            print()
            print("\n".join(keep))
        else:
            print(program.listing())
        return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    product = _resolve_product(args)
    generator = SentenceGenerator(product.grammar, seed=args.seed)
    for sentence in generator.sentences(args.count):
        print(sentence)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _service(args) as service:
        for dialect in args.warm or []:
            entry, warm = service.registry.acquire(dialect_features(dialect))
            state = "warm" if warm else "cold"
            print(f"warmed dialect {dialect!r} ({state}): {entry.product.name}")
        print(service.render_stats())
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Service health: breaker states, degradation counters, queue, timeouts."""
    import json as _json

    with _service(args) as service:
        # keep stdout pure JSON under --json: warm preamble goes to stderr
        warm_out = sys.stderr if args.json else sys.stdout
        for dialect in args.warm or []:
            entry, warm = service.registry.acquire(dialect_features(dialect))
            state = "warm" if warm else "cold"
            print(
                f"warmed dialect {dialect!r} ({state}): {entry.product.name}",
                file=warm_out,
            )
        health = service.health()
        if args.json:
            print(_json.dumps(health, indent=2, sort_keys=True))
        else:
            print(service.render_health())
    return 0 if health["status"] == "ok" else 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    """Run the conformance corpus: every case, every registered backend."""
    from .conformance import ConformanceRunner, load_corpus

    corpus = load_corpus(args.corpus)
    runner = ConformanceRunner(
        corpus=corpus,
        dialects=args.dialect or None,
        backends=tuple(args.backend) if args.backend else None,
        cache_dir=getattr(args, "cache", None),
    )
    report = runner.run()
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_coverage(args: argparse.Namespace) -> int:
    """Measure grammar coverage per preset dialect, with an optional gate.

    The conformance corpus runs first (instrumented interpreter); unless
    ``--no-generate``, the coverage-guided workload generator then keeps
    producing inputs until coverage stops improving, so the report shows
    what the *reachable* grammar looks like, not just what the corpus
    happens to touch.
    """
    from .conformance import (
        ConformanceRunner,
        CoverageReport,
        CoverageSuiteReport,
        load_corpus,
    )
    from .conformance.runner import INTERPRETER
    from .workloads.guided import CoverageGuidedGenerator

    corpus = load_corpus(args.corpus)
    runner = ConformanceRunner(
        corpus=corpus,
        dialects=args.dialect or None,
        backends=(INTERPRETER,),
        collect_coverage=True,
        cache_dir=getattr(args, "cache", None),
    )
    runner.run()
    reports = []
    for dialect in runner.dialects:
        product = runner.products[dialect]
        collector = runner.collectors[dialect]
        inputs = len(corpus.for_dialect(dialect))
        if not args.no_generate:
            generator = CoverageGuidedGenerator(
                product,
                program=runner.programs[dialect],
                collector=collector,
                seed=args.seed,
            )
            inputs += len(generator.generate_until_dry())
        reports.append(CoverageReport.of(product, collector, inputs=inputs))
    suite = CoverageSuiteReport(reports)
    if args.json:
        print(suite.to_json())
    else:
        print(suite.render())
    if args.fail_under is not None and not suite.gate(args.fail_under):
        print(
            f"coverage gate failed: rule coverage "
            f"{suite.rule_coverage_pct():.2f}% < {args.fail_under:g}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis of preset dialects (or an explicit selection).

    With no selection, every preset dialect is analyzed plus the pairwise
    feature-interaction pass over the whole product line — the CI
    ``lint-grammar`` entry point.
    """
    from .lint import Baseline, lint_products, lint_sql_dialects, render_baseline
    from .sql.product_line import build_sql_product_line

    baseline = Baseline.load(args.baseline) if args.baseline else None
    if args.features:
        product = _resolve_product(args)
        report = lint_products(
            [product],
            line=build_sql_product_line(),
            interactions=not args.no_interactions,
            baseline=baseline,
        )
    else:
        report = lint_sql_dialects(
            args.dialect or None,
            interactions=not args.no_interactions,
            baseline=baseline,
        )
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            handle.write(render_baseline(report.all_findings()))
        print(f"wrote baseline: {args.write_baseline} "
              f"({len(report.all_findings())} entries)")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if baseline is not None:
        for entry in baseline.unused_entries():
            print(
                f"note: baseline entry matched nothing and can be removed: "
                f"{entry.pattern!r} (line {entry.line})",
                file=sys.stderr,
            )
    if not report.gate(args.fail_on):
        counts = report.counts()
        print(
            f"lint gate failed (--fail-on {args.fail_on}): "
            f"{counts['error']} error(s), {counts['warning']} warning(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    """Translate one query between preset dialects.

    Success prints the translated SQL (rewrite notes on stderr); a
    feature gap prints the ``E0401`` diagnostic with its per-unit
    "enable feature" hints and exits 1 — malformed SQL is never emitted.
    """
    import json as _json

    with _service(args) as service:
        sql = args.sql
        if sql == "-":
            sql = sys.stdin.read()
        result = service.translate(sql, args.source, args.target)
    if not result.ok:
        print(result.render(filename="<translate>"), file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(result.result.report(), indent=2, sort_keys=True))
    else:
        print(result.sql)
        for note in result.rewrites:
            print(f"note: {note}", file=sys.stderr)
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    with _service(args) as service:
        return _shell_loop(args, service)


def _shell_loop(args: argparse.Namespace, service: ParseService) -> int:
    features = dialect_features(args.dialect)
    db = Database(args.dialect)
    print(f"repro SQL shell — dialect {args.dialect!r} "
          f"({db.product.size()['rules']} grammar rules). "
          "Type SQL, or .quit to exit.")
    while True:
        try:
            line = input("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (".quit", ".exit"):
            return 0
        if line == ".tables":
            print(", ".join(db.table_names()) or "(no tables)")
            continue
        if line == ".stats":
            print(service.render_stats())
            continue
        if line.startswith(".translate"):
            rest = line[len(".translate"):].strip()
            target, _, text = rest.partition(" ")
            if target not in dialect_names() or not text.strip():
                print("usage: .translate <dialect> <sql>  "
                      f"(dialects: {', '.join(dialect_names())})")
                continue
            result = service.translate(text.strip(), args.dialect, target)
            if result.ok:
                print(result.sql)
                for note in result.rewrites:
                    print(f"note: {note}")
            else:
                print(result.render(filename="<shell>"))
            continue
        # resilient pre-flight through the parse service: report *every*
        # syntax problem with carets and feature hints instead of dying on
        # the first one; repeated commands reuse the cached parser
        report = service.parse(line, features, max_errors=args.max_errors)
        if not report.ok:
            print(report.render(filename="<shell>"))
            continue
        try:
            outcome = db.execute(line)
        except ReproError as error:
            print(render_diagnostic(error.to_diagnostic(), source=line,
                                    filename="<shell>"))
            continue
        except Exception as error:  # a bug must not kill the session
            print(f"internal error: {type(error).__name__}: {error}")
            continue
        if outcome is None:
            print("ok")
        elif isinstance(outcome, int):
            print(f"{outcome} row(s) affected")
        else:
            print(outcome.to_text())


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Configure and explore tailor-made SQL parsers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("diagrams", help="list the feature diagrams").set_defaults(
        fn=_cmd_diagrams
    )

    show = sub.add_parser("show", help="render a feature diagram")
    show.add_argument("feature")
    show.set_defaults(fn=_cmd_show)

    sub.add_parser("dialects", help="compare preset dialects").set_defaults(
        fn=_cmd_dialects
    )

    features = sub.add_parser("features", help="features behind a preset")
    features.add_argument("dialect", choices=dialect_names())
    features.set_defaults(fn=_cmd_features)

    compose = sub.add_parser("compose", help="compose features into a parser")
    compose.add_argument("features", nargs="*", help="feature names to select")
    compose.add_argument("--dialect", choices=dialect_names())
    compose.add_argument("--emit", metavar="FILE",
                         help="write generated parser source")
    compose.add_argument("-q", "--query", help="try parsing this query")
    compose.add_argument("--max-errors", type=int, default=25, metavar="N",
                         help="stop reporting after N syntax errors")
    compose.add_argument("--cache", metavar="DIR",
                         help="persist generated parser source to DIR, keyed "
                              "by fingerprint, and print cache stats")
    compose.set_defaults(fn=_cmd_compose)

    ir = sub.add_parser(
        "ir", help="dump a product's compiled parse-program IR"
    )
    ir.add_argument("features", nargs="*", help="feature names to select")
    ir.add_argument("--dialect", choices=dialect_names())
    ir.add_argument("--rule", metavar="NAME",
                    help="show only this rule's instructions")
    ir.add_argument("--cache", metavar="DIR",
                    help="on-disk artifact cache directory (stores the "
                         "program as <digest>.ir.json)")
    ir.add_argument("--artifacts", action="store_true",
                    help="list every artifact kind for the selection's "
                         "fingerprint (source/IR/closures) with size and "
                         "staleness instead of the IR listing")
    ir.set_defaults(fn=_cmd_ir)

    sample = sub.add_parser("sample", help="random sentences of a dialect")
    sample.add_argument("dialect", choices=dialect_names())
    sample.add_argument("-n", "--count", type=int, default=10)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(fn=_cmd_sample)

    shell = sub.add_parser("shell", help="interactive SQL shell")
    shell.add_argument("dialect", choices=dialect_names(), nargs="?",
                       default="core")
    shell.add_argument("--max-errors", type=int, default=25, metavar="N",
                       help="stop reporting after N syntax errors")
    shell.add_argument("--cache", metavar="DIR",
                       help="on-disk artifact cache for generated parser "
                            "source (see `.stats` inside the shell)")
    shell.set_defaults(fn=_cmd_shell)

    lint = sub.add_parser(
        "lint",
        help="static analysis of grammars and the product line",
    )
    lint.add_argument("features", nargs="*",
                      help="lint one explicit feature selection instead of "
                           "the preset dialects")
    lint.add_argument("--dialect", action="append", choices=dialect_names(),
                      metavar="DIALECT",
                      help="restrict to a preset dialect (repeatable; "
                           "default: all presets)")
    lint.add_argument("--json", action="store_true",
                      help="emit the versioned JSON report")
    lint.add_argument("--fail-on", choices=("error", "warning"),
                      default="error",
                      help="exit 1 when findings at or above this grade "
                           "remain (default: error)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppression file of reviewed finding keys")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="seed FILE from the current (unsuppressed) "
                           "findings and continue")
    lint.add_argument("--no-interactions", action="store_true",
                      help="skip the pairwise feature-interaction pass")
    lint.set_defaults(fn=_cmd_lint)

    conformance = sub.add_parser(
        "conformance",
        help="run the conformance corpus (every registered parse backend)",
    )
    conformance.add_argument("--dialect", action="append",
                             choices=dialect_names(), metavar="DIALECT",
                             help="restrict to a preset dialect (repeatable; "
                                  "default: every dialect the corpus names)")
    conformance.add_argument("--backend", action="append",
                             choices=backend_names(), metavar="BACKEND",
                             help="restrict to one parse backend (repeatable; "
                                  "default: every registered backend)")
    conformance.add_argument("--corpus", metavar="DIR",
                             help="corpus directory (default: the in-repo "
                                  "corpus/)")
    conformance.add_argument("--json", action="store_true",
                             help="emit the versioned JSON report")
    conformance.add_argument("--cache", metavar="DIR",
                             help="on-disk artifact cache directory; reuses "
                                  "ir/closure artifacts across runs (the CI "
                                  "per-backend matrix stops recomposing)")
    conformance.set_defaults(fn=_cmd_conformance)

    coverage = sub.add_parser(
        "coverage",
        help="grammar coverage per dialect, with an optional CI gate",
    )
    coverage.add_argument("--dialect", action="append",
                          choices=dialect_names(), metavar="DIALECT",
                          help="restrict to a preset dialect (repeatable)")
    coverage.add_argument("--corpus", metavar="DIR",
                          help="corpus directory (default: the in-repo "
                               "corpus/)")
    coverage.add_argument("--json", action="store_true",
                          help="emit the versioned JSON report")
    coverage.add_argument("--fail-under", type=float, metavar="PCT",
                          help="exit 1 when aggregate rule coverage is below "
                               "PCT")
    coverage.add_argument("--no-generate", action="store_true",
                          help="measure the corpus only; skip coverage-guided "
                               "generation")
    coverage.add_argument("--seed", type=int, default=0,
                          help="seed for the coverage-guided generator")
    coverage.add_argument("--cache", metavar="DIR",
                          help="on-disk artifact cache directory shared with "
                               "`repro conformance`")
    coverage.set_defaults(fn=_cmd_coverage)

    translate = sub.add_parser(
        "translate",
        help="translate a query between preset dialects",
    )
    translate.add_argument("sql", help="SQL text ('-' reads stdin)")
    translate.add_argument("--from", dest="source", required=True,
                           choices=dialect_names(), metavar="DIALECT",
                           help="dialect the input is written in")
    translate.add_argument("--to", dest="target", required=True,
                           choices=dialect_names(), metavar="DIALECT",
                           help="dialect to render the output for")
    translate.add_argument("--json", action="store_true",
                           help="print the versioned transpile report")
    translate.add_argument("--cache", metavar="DIR",
                           help="persist generated parser source under DIR")
    translate.set_defaults(fn=_cmd_translate)

    stats = sub.add_parser(
        "stats", help="parse-service cache and latency metrics"
    )
    stats.add_argument("--warm", action="append", choices=dialect_names(),
                       metavar="DIALECT",
                       help="compose a preset dialect first (repeatable; "
                            "repeat the same dialect to see a cache hit)")
    stats.add_argument("--cache", metavar="DIR",
                       help="on-disk artifact cache directory")
    stats.add_argument("--executor", choices=("thread", "process"),
                       help="batch executor kind the service reports on")
    stats.add_argument("--workers", type=int, metavar="N",
                       help="worker-pool width")
    stats.set_defaults(fn=_cmd_stats)

    health = sub.add_parser(
        "health",
        help="parse-service health: breakers, degradation, queue "
             "(exit 0 iff status is ok)",
    )
    health.add_argument("--json", action="store_true",
                        help="emit the machine-readable health payload")
    health.add_argument("--warm", action="append", choices=dialect_names(),
                        metavar="DIALECT",
                        help="compose a preset dialect first (repeatable)")
    health.add_argument("--cache", metavar="DIR",
                        help="on-disk artifact cache directory")
    health.add_argument("--executor", choices=("thread", "process"),
                        help="batch executor kind the service reports on")
    health.add_argument("--workers", type=int, metavar="N",
                        help="worker-pool width")
    health.set_defaults(fn=_cmd_health)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return args.fn(args)
    except InvalidConfigurationError as error:
        # one diagnostic per violation, each with a suggested fix
        print(render_diagnostics(error.diagnostics(), filename="<config>"),
              file=sys.stderr)
        return 1
    except ReproError as error:
        print(render_diagnostic(error.to_diagnostic()), file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
